"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``
    Print the Figure 8 dataset-statistics table.
``figure {6b,8,9,10,11,12,13,14,15}``
    Run one paper-figure reproduction and print (and optionally save)
    the rendered report.
``compare``
    Race a chosen set of strategies on a chosen dataset and print the
    loss curves and speedups.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.datasets import load_benchmark_suite
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments import figures as figure_drivers
from repro.experiments.protocol import STRATEGY_NAMES
from repro.experiments.report import save_curves_csv, save_result_json
from repro.utils.tables import ascii_table

_FIGURES = {
    "6b": figure_drivers.figure6b,
    "8": figure_drivers.figure8,
    "9": figure_drivers.figure9,
    "10": figure_drivers.figure10,
    "11": figure_drivers.figure11,
    "12": figure_drivers.figure12,
    "13": figure_drivers.figure13,
    "14": figure_drivers.figure14,
    "15": figure_drivers.figure15,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ease.ml reproduction (VLDB 2018) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", help="print the Figure 8 dataset table")

    fig = sub.add_parser("figure", help="reproduce one paper figure")
    fig.add_argument("which", choices=sorted(_FIGURES))
    fig.add_argument("--trials", type=int, default=None,
                     help="number of repetitions (default: per-figure)")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--out", type=str, default=None,
                     help="also write the rendered report to this file")

    cmp_parser = sub.add_parser(
        "compare", help="race strategies on one dataset"
    )
    cmp_parser.add_argument(
        "--dataset", default="DEEPLEARNING",
        help="a Figure 8 dataset name (default: DEEPLEARNING)",
    )
    cmp_parser.add_argument(
        "--strategies", nargs="+", default=["easeml", "round_robin"],
        choices=list(STRATEGY_NAMES), metavar="STRATEGY",
    )
    cmp_parser.add_argument("--trials", type=int, default=10)
    cmp_parser.add_argument("--budget", type=float, default=0.3,
                            help="budget fraction (default 0.3)")
    cmp_parser.add_argument("--cost-aware", action="store_true")
    cmp_parser.add_argument("--seed", type=int, default=0)
    cmp_parser.add_argument("--json", type=str, default=None,
                            help="save the raw result as JSON")
    cmp_parser.add_argument("--csv", type=str, default=None,
                            help="save the loss curves as CSV")
    return parser


def _cmd_stats() -> int:
    suite = load_benchmark_suite(seed=0)
    rows = []
    for name, dataset in suite.items():
        stats = dataset.statistics()
        rows.append(
            [
                stats["name"],
                stats["n_users"],
                stats["n_models"],
                stats["quality"],
                stats["cost"],
            ]
        )
    print(
        ascii_table(
            ["Dataset", "# Users", "# Models", "Quality", "Cost"],
            rows,
            title="Figure 8: Statistics of Datasets",
        )
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    driver = _FIGURES[args.which]
    kwargs = {"seed": args.seed}
    if args.trials is not None and args.which != "8":
        kwargs["n_trials"] = args.trials
    report = driver(**kwargs)
    rendered = report.render()
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"\nreport written to {args.out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    suite = load_benchmark_suite(seed=args.seed)
    if args.dataset not in suite:
        print(
            f"unknown dataset {args.dataset!r}; choose from "
            f"{sorted(suite)}",
            file=sys.stderr,
        )
        return 2
    config = ExperimentConfig(
        n_trials=args.trials,
        budget_fraction=args.budget,
        cost_aware=args.cost_aware,
        base_seed=args.seed,
    )
    result = run_experiment(suite[args.dataset], args.strategies, config)
    print(result.render())
    if len(args.strategies) > 1:
        reference = args.strategies[0]
        rows = [
            [name, ratio, threshold]
            for name, (ratio, threshold) in result.speedups(
                reference
            ).items()
        ]
        print()
        print(
            ascii_table(
                ["competitor", "max speedup (x)", "at threshold"],
                rows,
                title=f"speedup of {reference}",
                precision=2,
            )
        )
    if args.json:
        save_result_json(result, args.json)
        print(f"raw result written to {args.json}")
    if args.csv:
        save_curves_csv(result, args.csv)
        print(f"curves written to {args.csv}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "stats":
        return _cmd_stats()
    if args.command == "figure":
        return _cmd_figure(args)
    return _cmd_compare(args)


if __name__ == "__main__":  # pragma: no cover - direct execution
    sys.exit(main())
