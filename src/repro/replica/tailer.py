"""Incremental WAL tailer: follow a live journal without the lock.

A :class:`WalTailer` reads the *writer's* state directory while the
writer keeps appending to it.  It seeds from the newest snapshot, then
follows ``journal.jsonl`` from a byte offset, consuming only complete
(newline-terminated) lines — a half-flushed final line is left in
place and picked up once the writer finishes it.

The interesting case is compaction: the writer snapshots, publishes a
``compaction.json`` pointer, and truncates the journal in place.  A
tailer mid-read observes one of three anomalies — the file shrank past
its offset, a complete line no longer parses (the bytes at its offset
belong to the *new* journal), or the next sequence number jumps.  All
three resolve the same way: re-seed from the latest snapshot, emitting
only the records past the tailer's frontier (compaction is replay-safe
— it drops only superseded ``token_rotated`` records — so the
snapshot's gap records reproduce exactly the state evolution the
truncated journal held).  Anomalies that re-seeding cannot explain
(the snapshot does not cover the frontier either) surface as
:class:`~repro.persist.journal.JournalCorruptionError` after a bounded
number of no-progress attempts rather than spinning forever.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.persist.journal import (
    JOURNAL_NAME,
    JournalCorruptionError,
    JournalRecord,
)
from repro.persist.snapshot import (
    load_latest_snapshot,
    read_compaction_pointer,
)

#: Consecutive re-seeds that yield no new records before the tailer
#: concludes the anomaly is corruption, not compaction.
_MAX_FRUITLESS_RESEEDS = 3


@dataclass
class TailBatch:
    """One poll's worth of new records, in apply order.

    ``records`` holds only records *past* the tailer's previous
    frontier — the consumer applies them incrementally regardless of
    how they were obtained.  When ``reseeded`` is true the batch was
    (at least partly) recovered via a snapshot after compaction
    truncated the journal: ``snapshot_seq`` is the snapshot's covering
    sequence and ``snapshot_records`` the snapshot's full compacted
    record basis, so a consumer that maintains a history (for a later
    promotion) can swap its basis to match the writer's compaction.
    """

    records: List[JournalRecord] = field(default_factory=list)
    reseeded: bool = False
    snapshot_seq: Optional[int] = None
    snapshot_records: Optional[List[JournalRecord]] = None

    def __bool__(self) -> bool:
        return bool(self.records) or self.reseeded


class WalTailer:
    """Follow one state directory's journal past a moving frontier.

    Single-consumer: not thread-safe, call :meth:`poll` from one
    thread.  The tailer never takes the directory's flock — it is a
    pure reader and must stay one.
    """

    def __init__(self, state_dir: Union[str, Path]) -> None:
        self.state_dir = Path(state_dir)
        self.journal_path = self.state_dir / JOURNAL_NAME
        #: Highest sequence number handed to the consumer.
        self.emitted_seq = 0
        #: Covering seq of the snapshot basis last seeded from.
        self.snapshot_seq = 0
        #: Times the tailer re-seeded from a snapshot (compactions
        #: survived, roughly).
        self.reseeds = 0
        self._offset = 0  # bytes of journal consumed (complete lines)
        self._lines = 0  # complete lines consumed (diagnostics only)
        self._fruitless = 0
        self._seeded = False

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    def seed(self) -> TailBatch:
        """Initial catch-up: newest snapshot plus the journal tail."""
        if self._seeded:
            raise RuntimeError("seed() may only be called once")
        self._seeded = True
        return self._reseed(initial=True)

    def poll(self) -> TailBatch:
        """Non-blocking: whatever complete new records landed since.

        Returns an empty (falsy) batch when nothing new arrived.
        Raises :class:`JournalCorruptionError` when the directory is
        damaged beyond what a snapshot re-seed explains.
        """
        if not self._seeded:
            raise RuntimeError("call seed() before poll()")
        try:
            size = self.journal_path.stat().st_size
        except FileNotFoundError:
            # Mid-compaction (or a damaged directory): the pointer
            # tells us whether a snapshot now covers our frontier.
            return self._maybe_reseed("journal file missing")
        if size < self._offset:
            return self._maybe_reseed(
                f"journal shrank to {size} bytes below the tailer's "
                f"offset {self._offset}"
            )
        if size == self._offset:
            self._fruitless = 0
            return TailBatch()
        records: List[JournalRecord] = []
        try:
            self._read_complete_lines(records)
        except _Anomaly as exc:
            # Lines parsed before the anomaly already advanced the
            # frontier: they must reach the consumer ahead of whatever
            # the re-seed recovers.
            batch = self._maybe_reseed(str(exc), parsed=records)
            batch.records[:0] = records
            return batch
        self._fruitless = 0
        return TailBatch(records=records)

    # ------------------------------------------------------------------
    # Incremental reading
    # ------------------------------------------------------------------
    def _read_complete_lines(self, records: List[JournalRecord]) -> None:
        """Parse complete lines past the offset; advance past each.

        New records are appended to ``records`` (an out-parameter, so
        progress survives a mid-read anomaly — the frontier advances
        with each parsed line).  Raises :class:`_Anomaly` (caller
        re-seeds) when a complete line fails to parse or the sequence
        numbers jump — both are what a concurrent truncation looks
        like from a stale offset.
        """
        with open(self.journal_path, "rb") as handle:
            handle.seek(self._offset)
            blob = handle.read()
        start = 0
        while True:
            newline = blob.find(b"\n", start)
            if newline < 0:
                break  # trailing partial line: leave it unconsumed
            line = blob[start : newline + 1]
            try:
                data = json.loads(line.decode("utf-8"))
                if not isinstance(data, dict):
                    raise ValueError("not a JSON object")
                record = JournalRecord.from_wire(
                    dict(data), line_no=self._lines + 1
                )
            except (
                ValueError,
                UnicodeDecodeError,
                JournalCorruptionError,
            ) as exc:
                # Commit what parsed before the bad line, then let the
                # caller decide whether a snapshot explains it.
                raise _Anomaly(
                    f"unparseable journal line at offset "
                    f"{self._offset + start}: {exc}"
                ) from None
            if record.seq > self.emitted_seq + 1:
                raise _Anomaly(
                    f"journal jumped from seq {self.emitted_seq} to "
                    f"{record.seq}"
                )
            # seq <= emitted_seq is legal overlap (a re-read from
            # offset 0 after a reseed): skip, but consume the bytes.
            if record.seq == self.emitted_seq + 1:
                records.append(record)
                self.emitted_seq = record.seq
            start = newline + 1
            self._offset += len(line)
            self._lines += 1

    # ------------------------------------------------------------------
    # Re-seeding
    # ------------------------------------------------------------------
    def _maybe_reseed(
        self, why: str, parsed: Optional[List[JournalRecord]] = None
    ) -> TailBatch:
        batch = self._reseed(initial=False)
        if batch.records or parsed:
            self._fruitless = 0
        else:
            self._fruitless += 1
            if self._fruitless >= _MAX_FRUITLESS_RESEEDS:
                raise JournalCorruptionError(
                    f"tailer anomaly ({why}) and "
                    f"{self._fruitless} re-seeds made no progress — "
                    f"{self.state_dir} looks corrupt, not compacted "
                    f"(frontier seq {self.emitted_seq})"
                )
        return batch

    def _reseed(self, *, initial: bool) -> TailBatch:
        """Re-anchor on the newest snapshot, then re-read the journal.

        Emits only records past the current frontier: snapshot records
        the consumer missed, then the journal tail from offset zero
        (overlap below the frontier is skipped by sequence number).
        """
        if not initial:
            self.reseeds += 1
        snapshot = load_latest_snapshot(self.state_dir)
        pointer = read_compaction_pointer(self.state_dir)
        records: List[JournalRecord] = []
        snap_records: List[JournalRecord] = []
        snap_seq = 0
        if snapshot is not None:
            snap_seq = snapshot.seq
            snap_records = list(snapshot.records)
            for record in snap_records:
                # Compaction makes snapshot seqs legally non-contiguous;
                # order is preserved, which is all replay needs.
                if record.seq > self.emitted_seq:
                    records.append(record)
            if snap_seq > self.emitted_seq:
                self.emitted_seq = snap_seq
        elif pointer is not None and pointer["seq"] > self.emitted_seq:
            raise JournalCorruptionError(
                f"compaction pointer names snapshot "
                f"{pointer['snapshot']} covering seq {pointer['seq']} "
                f"but no snapshot in {self.state_dir} validates"
            )
        self.snapshot_seq = max(self.snapshot_seq, snap_seq)
        # Re-read the whole journal: contiguity is re-anchored on the
        # (possibly advanced) frontier.
        self._offset = 0
        self._lines = 0
        try:
            self._read_complete_lines(records)
        except _Anomaly as exc:
            # The journal is moving under us *during* the reseed
            # (another compaction landed).  Surface what we have; the
            # next poll re-anchors again.
            if initial:
                raise JournalCorruptionError(str(exc)) from None
        return TailBatch(
            records=records,
            reseeded=True,
            snapshot_seq=snap_seq if snapshot is not None else 0,
            snapshot_records=snap_records,
        )


class _Anomaly(Exception):
    """An observation consistent with concurrent journal truncation."""
