"""Scale-out serving: WAL-tailing read replicas and writer promotion.

One process owns the write path — the flock, the journal, the
scheduler clock.  This package adds horizontal *read* capacity without
touching that invariant:

* :mod:`repro.replica.tailer` — an incremental WAL tailer that seeds
  from the newest snapshot, follows journal appends from a byte
  offset, and re-seeds cleanly when compaction truncates the journal
  past its frontier (the writer leaves a ``compaction.json`` pointer
  exactly for this hand-off);
* :mod:`repro.replica.replica` — a read replica: replays the tail
  through the recovery module's follower-mode apply path (real
  handlers, effect byte-verification, never re-journaling) and serves
  every read route; writes come back ``NOT_WRITER`` carrying the
  writer's address.  On writer death :meth:`ReadReplica.promote`
  acquires the flock, drains the tail, and takes over the write path;
* :mod:`repro.replica.supervisor` — the process supervisor: one
  writer plus N replicas behind an ``SO_REUSEPORT`` front tier (or a
  tiny forwarding proxy where the platform lacks it), heartbeat
  liveness, and automatic promotion of the most-caught-up replica.

The staleness contract: every replica exports
``replica_applied_seq`` / ``replica_lag_records`` /
``replica_lag_seconds`` gauges, stamps ``X-Replica-Lag`` on each
response, and — when started with a ``max_lag_records`` bound —
answers reads beyond the bound with ``UNAVAILABLE_RECOVERING`` rather
than serving arbitrarily stale state.
"""

from repro.replica.tailer import TailBatch, WalTailer
from repro.replica.replica import (
    PromotionReport,
    ReadReplica,
    ReplicaGateway,
)
from repro.replica.supervisor import (
    CLUSTER_NAME,
    ForwardingProxy,
    ServingPlane,
    read_cluster,
)

__all__ = [
    "CLUSTER_NAME",
    "ForwardingProxy",
    "PromotionReport",
    "ReadReplica",
    "ReplicaGateway",
    "ServingPlane",
    "TailBatch",
    "WalTailer",
    "read_cluster",
]
