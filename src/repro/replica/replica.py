"""ReadReplica: serve reads off a tailed WAL; promote on writer death.

A replica is recovery run *continuously*: it builds the same gateway
shape the writer has (same config, same seeded RNG, same zoo subset)
via :func:`~repro.persist.recovery.build_follower_gateway`, then
applies journal records through the recovery module's replay path as
the tailer surfaces them.  The gateway stays in follower mode
(``_replaying`` is never cleared), so applying records never
re-journals and replay-fired effects are byte-verified against the
writer's effect records — a replica that diverges fails loudly instead
of serving wrong answers.

:class:`ReplicaGateway` is the serving facade: it exposes the exact
duck type the HTTP frontends drive (``handle`` / ``is_read`` /
``submit_command`` / ``add_wait_abort`` / ``metrics``), serves every
read route from the follower gateway, and answers mutations with
``NOT_WRITER`` carrying the writer's address so the SDK can re-issue
them there.  Reads beyond the configured staleness bound come back
``UNAVAILABLE_RECOVERING`` instead of silently stale.

:meth:`ReadReplica.promote` is recovery's end-game re-used: take the
flock (the dead writer's OS-released lock), drain the tail, shed the
torn tail off the journal, attach a live :class:`StateStore`, give
every in-flight job an explicit disposition, and start journaling.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ApiError, ApiErrorCode
from repro.persist.journal import (
    JOURNAL_NAME,
    JournalError,
    JournalRecord,
    rewrite_journal,
)
from repro.persist.recovery import (
    IN_FLIGHT_POLICIES,
    _LIVE_STATES,
    build_follower_gateway,
    cancel_in_flight,
    replay_records,
)
from repro.persist.store import StateStore, acquire_lock, read_config
from repro.replica.tailer import TailBatch, WalTailer
from repro.service.api import Request
from repro.service.http import REPLICA_LAG_HEADER

#: How often an idle replica re-checks the journal for new records.
DEFAULT_POLL_INTERVAL = 0.05


@dataclass
class PromotionReport:
    """What a promotion found and did; ``describe()`` renders it."""

    state_dir: str
    final_seq: int
    recovered: List[str] = field(default_factory=list)
    lost: List[str] = field(default_factory=list)
    drained_records: int = 0
    duration_seconds: float = 0.0

    def describe(self) -> str:
        return (
            f"promoted replica to writer for {self.state_dir}\n"
            f"  final seq: {self.final_seq} "
            f"({self.drained_records} records drained at promotion)\n"
            f"  job handles: {len(self.recovered)} requeued, "
            f"{len(self.lost)} lost\n"
            f"  took {self.duration_seconds * 1e3:.1f} ms"
        )


class ReadReplica:
    """One follower applying a writer's WAL into a live gateway.

    Parameters
    ----------
    state_dir:
        The *writer's* state directory (shared filesystem).
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` the replica
        exports its staleness gauges into (and the follower gateway
        its request metrics).
    poll_interval:
        Idle sleep between journal polls, seconds.
    gateway_factory:
        Forwarded to recovery's gateway construction (tests and
        embedders that need a custom backend shape).
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        *,
        metrics=None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        gateway_factory=None,
    ) -> None:
        self.state_dir = Path(state_dir)
        config = read_config(self.state_dir)
        if config is None:
            raise JournalError(
                f"{self.state_dir} has no config.json — the writer "
                "must serve (and take its first request) before a "
                "replica can follow it"
            )
        self.config: Dict[str, Any] = config
        self.gateway = build_follower_gateway(
            config, metrics=metrics, gateway_factory=gateway_factory
        )
        self.tailer = WalTailer(self.state_dir)
        self.poll_interval = float(poll_interval)
        self.promoted = False
        self.applied_seq = 0
        self._target_seq = 0
        self._snapshot_seq = 0
        self._history: List[JournalRecord] = []
        self._behind_since: Optional[float] = None
        self._reseeds_seen = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._bind_metrics(self.gateway.metrics)

    def _bind_metrics(self, registry) -> None:
        self._m_applied = registry.gauge(
            "replica_applied_seq",
            "Highest journal sequence number applied by this replica.",
        )
        self._m_lag_records = registry.gauge(
            "replica_lag_records",
            "Journal records observed on disk but not yet applied.",
        )
        self._m_lag_seconds = registry.gauge(
            "replica_lag_seconds",
            "Seconds this replica has been behind the observed tail "
            "(0 when caught up).",
        )
        self._m_reseeds = registry.counter(
            "replica_reseeds_total",
            "Times the tailer re-seeded from a snapshot (journal "
            "compactions survived).",
        )
        self._m_is_writer = registry.gauge(
            "replica_is_writer",
            "1 once this process promoted itself to writer, else 0.",
        )
        self._m_is_writer.set(0.0)

    # ------------------------------------------------------------------
    # Staleness
    # ------------------------------------------------------------------
    @property
    def lag_records(self) -> int:
        """Records known to exist on disk but not yet applied here."""
        return max(0, self._target_seq - self.applied_seq)

    @property
    def lag_seconds(self) -> float:
        if self._behind_since is None:
            return 0.0
        return max(0.0, time.monotonic() - self._behind_since)

    def _publish_lag(self) -> None:
        lag = self.lag_records
        if lag <= 0:
            self._behind_since = None
        elif self._behind_since is None:
            self._behind_since = time.monotonic()
        self._m_applied.set(float(self.applied_seq))
        self._m_lag_records.set(float(lag))
        self._m_lag_seconds.set(self.lag_seconds)

    # ------------------------------------------------------------------
    # The tail loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Seed synchronously (caller returns caught-up), then follow."""
        self._apply(self.tailer.seed())
        self._publish_lag()
        self._thread = threading.Thread(
            target=self._run, name="wal-tailer", daemon=True
        )
        self._thread.start()

    def step(self) -> int:
        """One poll+apply cycle (tests and embedders); records applied."""
        batch = self.tailer.poll()
        n = len(batch.records)
        if batch:
            self._apply(batch)
        self._publish_lag()
        return n

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            if self.promoted:
                return
            # An uncaught exception here (corrupt directory, replay
            # divergence) kills the tail loop: the gauges freeze at
            # the last applied seq and lag grows — exactly the signal
            # the supervisor and the staleness bound act on.
            applied = self.step()
            if not applied:
                self._stop.wait(self.poll_interval)

    def _apply(self, batch: TailBatch) -> None:
        """Apply one batch through the recovery replay path."""
        if self.tailer.reseeds > self._reseeds_seen:
            self._m_reseeds.inc(self.tailer.reseeds - self._reseeds_seen)
            self._reseeds_seen = self.tailer.reseeds
        if batch.records or batch.reseeded:
            self._target_seq = max(
                self._target_seq, self.tailer.emitted_seq
            )
        self._publish_lag()
        if batch.reseeded and batch.snapshot_records is not None:
            # Swap the history basis to the writer's compacted one,
            # keeping any tail records we already applied past it.
            snapshot_seq = batch.snapshot_seq or 0
            tail = [
                r
                for r in self._history
                if r.seq > snapshot_seq and r.seq <= self.applied_seq
            ]
            self._history = list(batch.snapshot_records) + tail
            self._snapshot_seq = max(self._snapshot_seq, snapshot_seq)
        if batch.records:
            apply_started = time.perf_counter()
            with self.gateway._lock:
                replay_records(self.gateway, batch.records)
            apply_duration = time.perf_counter() - apply_started
            self._record_apply_spans(batch.records, apply_duration)
            self._history.extend(batch.records)
            self.applied_seq = batch.records[-1].seq
        elif batch.reseeded:
            # A snapshot that covers records we already applied (all
            # new records were compacted into it) still advances the
            # frontier past the compaction boundary.
            self.applied_seq = max(self.applied_seq, self.tailer.emitted_seq)
        self._publish_lag()

    def _record_apply_spans(
        self, records, duration: float
    ) -> None:
        """Join replica-side apply time to the writer's traces.

        Primary WAL records carry the ``request_id`` of the request
        that produced them (stamped by the gateway), and the tracer's
        ``trace_id`` *is* that id — so a replica apply span lands in
        this replica's ring under the same id the writer's trace
        kept, and a cross-process waterfall is one ring lookup per
        side.  The whole batch replays under one lock hold, so each
        joined record reports the batch duration with the batch size
        attached.
        """
        tracer = getattr(self.gateway, "tracer", None)
        if tracer is None or not tracer.enabled:
            return
        for record in records:
            request_id = record.payload.get("request_id")
            if not request_id:
                continue
            tracer.record_remote(
                str(request_id),
                "replica.apply",
                duration,
                seq=record.seq,
                type=record.type,
                batch=len(records),
            )

    # ------------------------------------------------------------------
    # Promotion
    # ------------------------------------------------------------------
    def promote(
        self,
        *,
        in_flight: str = "requeue",
        lock_timeout: float = 10.0,
    ) -> PromotionReport:
        """Take over the write path after the writer died.

        Acquires the directory's flock (retrying up to
        ``lock_timeout`` seconds — the kernel releases the dead
        writer's lock, but not instantly), drains the remaining tail,
        sheds the torn tail off the journal, attaches a live
        :class:`~repro.persist.StateStore`, and gives every in-flight
        job an explicit disposition — the same end-game as crash
        recovery, minus the replay (this process already did it,
        incrementally, while the writer was alive).
        """
        if in_flight not in IN_FLIGHT_POLICIES:
            raise ValueError(
                f"in_flight must be one of {IN_FLIGHT_POLICIES}, "
                f"got {in_flight!r}"
            )
        if self.promoted:
            raise RuntimeError("this replica already promoted itself")
        started = time.perf_counter()
        deadline = time.monotonic() + float(lock_timeout)
        while True:
            try:
                lock_handle = acquire_lock(self.state_dir)
                break
            except JournalError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        try:
            # Stop the background tail loop before mutating shared
            # state (promote may be called from any thread).
            self._stop.set()
            if (
                self._thread is not None
                and self._thread is not threading.current_thread()
            ):
                self._thread.join(timeout=5.0)
            drained = 0
            with self.gateway._lock:
                # Final drain: the writer is dead and we hold its
                # lock, so the journal is no longer moving.
                while True:
                    batch = self.tailer.poll()
                    if not batch:
                        break
                    drained += len(batch.records)
                    self._apply(batch)
                return self._promote_locked(
                    lock_handle, in_flight, drained, started
                )
        except BaseException:
            lock_handle.close()
            raise

    def _promote_locked(
        self, lock_handle, in_flight: str, drained: int, started: float
    ) -> PromotionReport:
        gateway = self.gateway
        # Effects fired by the writer's final operation whose records
        # never hit the disk before it died: state already reflects
        # them, so they must be re-journaled once the store is live
        # (recovery's torn-effects discipline).
        torn_effects = list(gateway._pending_effects)
        gateway._pending_effects.clear()
        gateway._replaying = False

        # Shed the torn tail / pre-snapshot overlap: the new writer
        # appends to a journal that contains exactly the applied tail.
        tail = [
            r for r in self._history if r.seq > self._snapshot_seq
        ]
        rewrite_journal(self.state_dir / JOURNAL_NAME, tail)

        recovered: List[str] = []
        lost: List[str] = []
        for handle, record in sorted(gateway._jobs.items()):
            if record.cancelled or record.job.state not in _LIVE_STATES:
                continue
            if in_flight == "requeue":
                record.disposition = "recovered"
                recovered.append(handle)
            else:
                lost.append(handle)

        store = StateStore(
            self.state_dir,
            sync=self.config.get("sync", "fsync"),
            snapshot_every=int(self.config.get("snapshot_every", 256)),
            history=list(self._history),
            start_seq=self.applied_seq,
            snapshot_seq=self._snapshot_seq,
            lock_handle=lock_handle,
        )
        gateway.attach_store(store)
        for rtype, payload in torn_effects:
            store.append(rtype, payload)
        if lost:
            cancel_in_flight(
                gateway, lost, seq=self.applied_seq, disposition="lost"
            )
            gateway._persist("job_cancelled", {"handles": lost})
        store.commit()
        self.promoted = True
        self._m_is_writer.set(1.0)
        self._publish_lag()
        return PromotionReport(
            state_dir=str(self.state_dir),
            final_seq=store.last_seq,
            recovered=recovered,
            lost=lost,
            drained_records=drained,
            duration_seconds=time.perf_counter() - started,
        )


class ReplicaGateway:
    """The serving facade frontends drive instead of a ServiceGateway.

    Reads flow to the follower gateway (subject to the staleness
    bound); mutations come back ``NOT_WRITER`` with the writer's
    address in the error details.  After :meth:`ReadReplica.promote`
    the facade becomes transparent — every request flows through to
    the (now writing) gateway.
    """

    def __init__(
        self,
        replica: ReadReplica,
        *,
        max_lag_records: Optional[int] = None,
        writer_url: Optional[str] = None,
    ) -> None:
        self.replica = replica
        self.max_lag_records = (
            None if max_lag_records is None else int(max_lag_records)
        )
        self.writer_url = writer_url

    # -- staleness contract -------------------------------------------
    def extra_response_headers(self) -> Dict[str, str]:
        """Stamped on every HTTP response by the frontends."""
        return {REPLICA_LAG_HEADER: str(self.replica.lag_records)}

    def _check_staleness(self) -> None:
        lag = self.replica.lag_records
        if (
            self.max_lag_records is not None
            and lag > self.max_lag_records
        ):
            raise ApiError(
                ApiErrorCode.UNAVAILABLE_RECOVERING,
                f"replica is {lag} records behind the writer "
                f"(bound: {self.max_lag_records}); retry here "
                "shortly or read from the writer",
                replica_lag_records=lag,
                writer_url=self.writer_url,
            )

    def _not_writer(self) -> ApiError:
        return ApiError(
            ApiErrorCode.NOT_WRITER,
            "this endpoint is a read replica; send mutations to the "
            "writer",
            writer_url=self.writer_url,
            replica_lag_records=self.replica.lag_records,
        )

    # -- the frontend duck type ---------------------------------------
    def is_read(self, request) -> bool:
        return self.replica.gateway.is_read(request)

    def handle(self, request):
        gateway = self.replica.gateway
        if self.replica.promoted:
            return gateway.handle(request)
        if not isinstance(request, Request):
            return gateway.handle(request)  # proper INVALID_ARGUMENT
        if gateway.is_read(request):
            self._check_staleness()
            return gateway.handle(request)
        raise self._not_writer()

    def submit_command(self, request) -> Future:
        if self.replica.promoted:
            return self.replica.gateway.submit_command(request)
        future: Future = Future()
        future.set_exception(self._not_writer())
        return future

    def __getattr__(self, name: str) -> Any:
        # Everything else (metrics, add_wait_abort, shutdown_commands,
        # tracing attributes) behaves exactly like the underlying
        # gateway.
        return getattr(self.replica.gateway, name)
