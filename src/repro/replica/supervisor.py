"""ServingPlane: one writer + N read replicas as supervised processes.

The supervisor owns the cluster topology:

* the **writer** child runs ``open_gateway`` (taking the state
  directory's flock) and serves the full API on its direct port;
* each **replica** child runs a :class:`~repro.replica.ReadReplica`
  behind a :class:`~repro.replica.ReplicaGateway` facade on its own
  direct port;
* every member *additionally* binds the shared **front port** with
  ``SO_REUSEPORT`` — the kernel spreads incoming connections across
  the live members, replicas absorb the read load, and mutations that
  land on a replica bounce to the writer via the ``NOT_WRITER``
  redirect the SDK follows automatically.  Where the platform lacks
  ``SO_REUSEPORT`` a tiny :class:`ForwardingProxy` provides the same
  single-address front.

Liveness is heartbeat-over-pipe plus ``Process.is_alive``.  When the
writer dies, the monitor elects the replica with the highest applied
sequence, sends it ``promote`` (it takes the flock the kernel just
released, drains the tail, and starts journaling), points the other
replicas' redirects at the new writer, and rewrites ``cluster.json`` —
the on-disk topology document ``repro replica status`` reads.

Port layout (``port`` = the front port): writer direct = ``port+1``,
replica *i* direct = ``port+2+i``.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.persist.journal import canonical_json
from repro.persist.store import has_state

CLUSTER_NAME = "cluster.json"

#: Seconds a child gets to come up before the supervisor gives up on
#: it (cold numpy imports on a loaded box take a while).
READY_TIMEOUT = 120.0

#: Seconds the monitor waits for an elected replica to finish
#: promotion before trying the next one.
PROMOTE_TIMEOUT = 60.0


def read_cluster(
    state_dir: Union[str, Path]
) -> Optional[Dict[str, Any]]:
    """The topology document the supervisor maintains, or None."""
    path = Path(state_dir) / CLUSTER_NAME
    if not path.exists():
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


def _write_cluster(
    state_dir: Union[str, Path], document: Dict[str, Any]
) -> None:
    path = Path(state_dir) / CLUSTER_NAME
    tmp = path.with_suffix(".tmp")
    tmp.write_text(canonical_json(document) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def free_port(host: str = "127.0.0.1") -> int:
    """An ephemeral port that was free a moment ago (tests/CLI)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


# ----------------------------------------------------------------------
# Child process entry points (module-level: must survive pickling
# under the spawn start method)
# ----------------------------------------------------------------------
def _writer_main(
    conn,
    state_dir: str,
    host: str,
    front_port: int,
    direct_port: int,
    reuse_front: bool,
    tenants: List[str],
    service: Dict[str, Any],
) -> None:
    from repro.obs import MetricsRegistry
    from repro.persist import open_gateway
    from repro.service.http import serve_background

    try:
        gateway, report = open_gateway(
            state_dir,
            sync=service.get("sync"),
            snapshot_every=service.get("snapshot_every"),
            in_flight=service.get("in_flight", "requeue"),
            metrics=MetricsRegistry(),
            **service.get("gateway_kwargs", {}),
        )
        existing = set(gateway.tenant_names())
        for name in tenants:
            if name not in existing:
                gateway.create_tenant(name)
        tokens = {
            name: gateway.tenant_token(name)
            for name in gateway.tenant_names()
        }
        direct, _ = serve_background(gateway, host, direct_port)
        if reuse_front:
            serve_background(gateway, host, front_port, reuse_port=True)
    except BaseException as exc:  # noqa: BLE001 - report, then die
        conn.send({"event": "failed", "error": f"{exc}"})
        raise
    conn.send(
        {
            "event": "ready",
            "role": "writer",
            "pid": os.getpid(),
            "url": direct.url,
            "tokens": tokens,
            "recovered": report is not None,
        }
    )
    _child_loop(
        conn,
        heartbeat=lambda: {
            "role": "writer",
            "seq": gateway.store.last_seq if gateway.store else 0,
        },
    )


def _replica_main(
    conn,
    state_dir: str,
    host: str,
    front_port: int,
    direct_port: int,
    reuse_front: bool,
    writer_url: str,
    max_lag_records: Optional[int],
    in_flight: str,
) -> None:
    from repro.replica.replica import ReadReplica, ReplicaGateway
    from repro.service.http import serve_background

    try:
        # The writer creates config.json at startup, but this child
        # may win the race to it.
        deadline = time.monotonic() + READY_TIMEOUT
        while not has_state(state_dir):
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{state_dir} never grew a config.json — is the "
                    "writer running?"
                )
            time.sleep(0.05)
        replica = ReadReplica(state_dir)
        replica.start()
        facade = ReplicaGateway(
            replica,
            max_lag_records=max_lag_records,
            writer_url=writer_url,
        )
        direct, _ = serve_background(facade, host, direct_port)
        if reuse_front:
            serve_background(facade, host, front_port, reuse_port=True)
    except BaseException as exc:  # noqa: BLE001 - report, then die
        conn.send({"event": "failed", "error": f"{exc}"})
        raise
    conn.send(
        {
            "event": "ready",
            "role": "replica",
            "pid": os.getpid(),
            "url": direct.url,
        }
    )

    def handle(msg: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        if msg.get("cmd") == "promote":
            report = replica.promote(
                in_flight=msg.get("in_flight", in_flight)
            )
            facade.writer_url = direct.url
            return {
                "event": "promoted",
                "url": direct.url,
                "pid": os.getpid(),
                "final_seq": report.final_seq,
                "recovered": report.recovered,
                "lost": report.lost,
                "duration_seconds": report.duration_seconds,
            }
        if msg.get("cmd") == "writer_changed":
            facade.writer_url = msg.get("writer_url")
            return None
        return None

    _child_loop(
        conn,
        heartbeat=lambda: {
            "role": "replica",
            "applied_seq": replica.applied_seq,
            "lag_records": replica.lag_records,
            "promoted": replica.promoted,
        },
        handle=handle,
    )


def _child_loop(conn, *, heartbeat, handle=None, interval=0.5) -> None:
    """Heartbeat until the parent says shutdown (or disappears)."""
    while True:
        try:
            if conn.poll(interval):
                msg = conn.recv()
                if not isinstance(msg, dict) or msg.get("cmd") == "shutdown":
                    return
                if handle is not None:
                    reply = handle(msg)
                    if reply is not None:
                        conn.send(reply)
            else:
                beat = {"event": "heartbeat"}
                beat.update(heartbeat())
                conn.send(beat)
        except (EOFError, BrokenPipeError, OSError):
            return  # the supervisor died; daemon servers die with us


# ----------------------------------------------------------------------
# The forwarding proxy (front tier without SO_REUSEPORT)
# ----------------------------------------------------------------------
class ForwardingProxy:
    """A minimal round-robin TCP forwarder for the front port.

    Used only where the platform lacks ``SO_REUSEPORT``: one listener
    accepts front-door connections and pumps bytes to the next live
    backend.  No HTTP awareness — the replica/writer semantics live
    entirely in the backends' responses.
    """

    def __init__(
        self, host: str, port: int, backends: List[Tuple[str, int]]
    ) -> None:
        self.host = host
        self.backends = list(backends)
        self._rr = 0
        self._lock = threading.Lock()
        self._listener = socket.create_server(
            (host, port), backlog=64, reuse_port=False
        )
        self.port = self._listener.getsockname()[1]
        self._closed = threading.Event()
        self._thread = threading.Thread(
            target=self._accept_loop, name="front-proxy", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def set_backends(self, backends: List[Tuple[str, int]]) -> None:
        with self._lock:
            self.backends = list(backends)

    def close(self) -> None:
        self._closed.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - teardown race
            pass

    def _next_backend(self) -> Optional[Tuple[str, int]]:
        with self._lock:
            if not self.backends:
                return None
            backend = self.backends[self._rr % len(self.backends)]
            self._rr += 1
            return backend

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            backend = self._next_backend()
            if backend is None:
                client.close()
                continue
            try:
                upstream = socket.create_connection(backend, timeout=10.0)
            except OSError:
                client.close()
                continue
            for a, b in ((client, upstream), (upstream, client)):
                threading.Thread(
                    target=self._pump, args=(a, b), daemon=True
                ).start()

    @staticmethod
    def _pump(src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                chunk = src.recv(65536)
                if not chunk:
                    break
                dst.sendall(chunk)
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------
@dataclass
class _Member:
    name: str
    role: str  # "writer" | "replica"
    process: Any = None
    conn: Any = None
    url: str = ""
    pid: int = 0
    applied_seq: int = 0
    promoted: bool = False
    last_seen: float = field(default_factory=time.monotonic)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ServingPlane:
    """Supervise one writer plus N replicas over a shared front port."""

    def __init__(
        self,
        state_dir: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 1,
        max_lag_records: Optional[int] = None,
        tenants: Optional[List[str]] = None,
        sync: Optional[str] = None,
        snapshot_every: Optional[int] = None,
        in_flight: str = "requeue",
        gateway_kwargs: Optional[Dict[str, Any]] = None,
        heartbeat_interval: float = 0.5,
        auto_promote: bool = True,
        mp_start_method: str = "spawn",
    ) -> None:
        if int(replicas) < 0:
            raise ValueError(f"replicas must be >= 0, got {replicas}")
        self.state_dir = Path(state_dir)
        self.host = host
        self.front_port = int(port) if int(port) else free_port(host)
        self.n_replicas = int(replicas)
        self.max_lag_records = max_lag_records
        self.tenants = list(tenants or ["default"])
        self.service = {
            "sync": sync,
            "snapshot_every": snapshot_every,
            "in_flight": in_flight,
            "gateway_kwargs": dict(gateway_kwargs or {}),
        }
        self.in_flight = in_flight
        self.heartbeat_interval = float(heartbeat_interval)
        self.auto_promote = bool(auto_promote)
        self._mp_start_method = mp_start_method
        from repro.service.http import supports_reuse_port

        self.reuse_port = supports_reuse_port()
        self.proxy: Optional[ForwardingProxy] = None
        self.tokens: Dict[str, str] = {}
        self.members: List[_Member] = []
        self.writer: Optional[_Member] = None
        self.promotions = 0
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- addresses -----------------------------------------------------
    @property
    def front_url(self) -> str:
        return f"http://{self.host}:{self.front_port}"

    @property
    def writer_url(self) -> Optional[str]:
        return self.writer.url if self.writer else None

    def replica_urls(self) -> List[str]:
        return [
            m.url
            for m in self.members
            if m.role == "replica" and not m.promoted and m.alive
        ]

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context(self._mp_start_method)
        writer = _Member(name="writer", role="writer")
        parent, child = ctx.Pipe()
        writer.conn = parent
        writer.process = ctx.Process(
            target=_writer_main,
            name="easeml-writer",
            args=(
                child,
                str(self.state_dir),
                self.host,
                self.front_port,
                self.front_port + 1,
                self.reuse_port,
                self.tenants,
                self.service,
            ),
            daemon=False,
        )
        writer.process.start()
        child.close()
        ready = self._await(writer, "ready", READY_TIMEOUT)
        writer.url = ready["url"]
        writer.pid = ready["pid"]
        self.tokens = dict(ready["tokens"])
        self.writer = writer
        self.members.append(writer)

        for i in range(self.n_replicas):
            member = _Member(name=f"replica-{i}", role="replica")
            parent, child = ctx.Pipe()
            member.conn = parent
            member.process = ctx.Process(
                target=_replica_main,
                name=f"easeml-{member.name}",
                args=(
                    child,
                    str(self.state_dir),
                    self.host,
                    self.front_port,
                    self.front_port + 2 + i,
                    self.reuse_port,
                    writer.url,
                    self.max_lag_records,
                    self.in_flight,
                ),
                daemon=False,
            )
            member.process.start()
            child.close()
            ready = self._await(member, "ready", READY_TIMEOUT)
            member.url = ready["url"]
            member.pid = ready["pid"]
            self.members.append(member)

        if not self.reuse_port:
            self.proxy = ForwardingProxy(
                self.host, self.front_port, self._proxy_backends()
            )
        self._write_topology()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="plane-monitor", daemon=True
        )
        self._monitor.start()

    def stop(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        if self.proxy is not None:
            self.proxy.close()
        for member in self.members:
            if member.conn is not None:
                try:
                    member.conn.send({"cmd": "shutdown"})
                except (BrokenPipeError, OSError):
                    pass
        for member in self.members:
            if member.process is not None:
                member.process.join(timeout=5.0)
                if member.process.is_alive():
                    member.process.terminate()
                    member.process.join(timeout=5.0)

    # -- internals -----------------------------------------------------
    def _await(
        self, member: _Member, event: str, timeout: float
    ) -> Dict[str, Any]:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not member.alive and not member.conn.poll():
                break
            if member.conn.poll(0.1):
                try:
                    msg = member.conn.recv()
                except (EOFError, OSError):
                    break
                if not isinstance(msg, dict):
                    continue
                if msg.get("event") == "failed":
                    raise RuntimeError(
                        f"{member.name} failed to start: {msg.get('error')}"
                    )
                if msg.get("event") == event:
                    return msg
                self._note(member, msg)
        raise RuntimeError(
            f"{member.name} did not report {event!r} within {timeout}s"
        )

    def _note(self, member: _Member, msg: Dict[str, Any]) -> None:
        member.last_seen = time.monotonic()
        if "applied_seq" in msg:
            member.applied_seq = int(msg["applied_seq"])
        if "seq" in msg:
            member.applied_seq = int(msg["seq"])
        if msg.get("promoted"):
            member.promoted = True

    def _proxy_backends(self) -> List[Tuple[str, int]]:
        backends = []
        for member in self.members:
            if not member.alive:
                continue
            parsed = member.url.rsplit(":", 1)
            backends.append((self.host, int(parsed[1])))
        return backends

    def _write_topology(self) -> None:
        _write_cluster(
            self.state_dir,
            {
                "front_url": (
                    self.proxy.url if self.proxy else self.front_url
                ),
                "writer_url": self.writer_url,
                "writer_pid": self.writer.pid if self.writer else 0,
                "reuse_port": self.reuse_port,
                "promotions": self.promotions,
                "members": [
                    {
                        "name": m.name,
                        "role": (
                            "writer"
                            if m is self.writer or m.promoted
                            else m.role
                        ),
                        "url": m.url,
                        "pid": m.pid,
                        "alive": m.alive,
                    }
                    for m in self.members
                ],
            },
        )

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            for member in self.members:
                while member.conn is not None and member.conn.poll():
                    try:
                        msg = member.conn.recv()
                    except (EOFError, OSError):
                        break
                    if isinstance(msg, dict):
                        self._note(member, msg)
            writer = self.writer
            if (
                writer is not None
                and not writer.alive
                and self.auto_promote
            ):
                self._promote_best()

    def _promote_best(self) -> None:
        with self._lock:
            dead = self.writer
            candidates = sorted(
                (
                    m
                    for m in self.members
                    if m.role == "replica" and m.alive and not m.promoted
                ),
                key=lambda m: m.applied_seq,
                reverse=True,
            )
            promoted = None
            for candidate in candidates:
                try:
                    candidate.conn.send(
                        {"cmd": "promote", "in_flight": self.in_flight}
                    )
                    reply = self._await(
                        candidate, "promoted", PROMOTE_TIMEOUT
                    )
                except (RuntimeError, BrokenPipeError, OSError):
                    continue
                candidate.promoted = True
                candidate.url = reply.get("url", candidate.url)
                promoted = candidate
                break
            if promoted is None:
                return  # nothing left to promote; keep watching
            self.writer = promoted
            self.promotions += 1
            if dead is not None and dead in self.members:
                self.members.remove(dead)
            for member in self.members:
                if member.role == "replica" and member is not promoted:
                    try:
                        member.conn.send(
                            {
                                "cmd": "writer_changed",
                                "writer_url": promoted.url,
                            }
                        )
                    except (BrokenPipeError, OSError):
                        pass
            if self.proxy is not None:
                self.proxy.set_backends(self._proxy_backends())
            self._write_topology()
