"""Candidate-model generation: templates × normalization variants.

Given a parsed program, ease.ml (1) matches it against the Figure 4
templates and (2), for image-shaped inputs, multiplies the matched
models by the automatic-normalization family of Figure 5 — each
``(model, f_k)`` pair is one additional candidate (Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.platform.normalization import (
    DEFAULT_KS,
    NormalizationFunction,
    default_normalization_family,
)
from repro.platform.schema import Program
from repro.platform.templates import Template, WorkloadKind, match_template

#: Workloads whose inputs are image-shaped and therefore eligible for
#: the automatic-normalization expansion.
_NORMALIZABLE_KINDS = (
    WorkloadKind.IMAGE_CLASSIFICATION,
    WorkloadKind.IMAGE_RECOVERY,
)


@dataclass(frozen=True)
class CandidateModel:
    """One runnable candidate: a base model plus optional normalization."""

    base_model: str
    normalization: Optional[NormalizationFunction] = None

    @property
    def name(self) -> str:
        if self.normalization is None:
            return self.base_model
        return f"{self.base_model}+{self.normalization.name}"


def generate_candidates(
    program: Program,
    *,
    include_normalization: bool = True,
    ks: Sequence[float] = DEFAULT_KS,
    template: Optional[Template] = None,
) -> List[CandidateModel]:
    """All candidate models for ``program``, in deterministic order.

    The plain (un-normalized) variants come first, in the template's
    model order; normalization variants follow grouped by model then by
    ``k``.  Pass ``template`` to skip re-matching.
    """
    matched = template if template is not None else match_template(program)
    candidates = [CandidateModel(m) for m in matched.models]
    if include_normalization and matched.kind in _NORMALIZABLE_KINDS:
        family = default_normalization_family(ks)
        for model in matched.models:
            for func in family:
                candidates.append(CandidateModel(model, func))
    return candidates
