"""The declarative ease.ml platform (Section 2).

A user describes a machine-learning task as an arbitrary function
approximator: the shapes of the input and output objects plus example
pairs.  This subpackage implements that whole surface:

* :mod:`repro.platform.schema` — typed data objects (constant-shape
  tensors + recursive fields), the system data types of Figure 3;
* :mod:`repro.platform.dsl` — the Figure 2 grammar: a tokenizer and
  recursive-descent parser for programs like
  ``{input: {[Tensor[256,256,3]], []}, output: {[Tensor[3]], []}}``;
* :mod:`repro.platform.templates` — Figure 4's template table with
  wildcard matching (top-to-bottom, most-specific first);
* :mod:`repro.platform.normalization` — the automatic input
  normalization family ``f_k(x) = -x^{2k} + x^k`` of Figure 5;
* :mod:`repro.platform.candidates` — candidate-model generation
  (template matches × normalization variants);
* :mod:`repro.platform.storage` — the shared example store behind the
  ``feed`` / ``refine`` operators;
* :mod:`repro.platform.server` — the ease.ml server: registered apps,
  the three user-facing operators (``feed``, ``refine``, ``infer``)
  and the multi-tenant scheduling loop over live training.
"""

from repro.platform.candidates import CandidateModel, generate_candidates
from repro.platform.dsl import parse_program, program_from_shapes
from repro.platform.normalization import (
    NormalizationFunction,
    default_normalization_family,
)
from repro.platform.schema import (
    DataType,
    NonRecField,
    Program,
    TensorType,
)
from repro.platform.server import EaseMLApp, EaseMLServer
from repro.platform.storage import ExampleStore, SharedStorage
from repro.platform.templates import (
    TEMPLATES,
    Template,
    WorkloadKind,
    match_template,
)

__all__ = [
    "TensorType",
    "NonRecField",
    "DataType",
    "Program",
    "parse_program",
    "program_from_shapes",
    "Template",
    "WorkloadKind",
    "TEMPLATES",
    "match_template",
    "NormalizationFunction",
    "default_normalization_family",
    "CandidateModel",
    "generate_candidates",
    "ExampleStore",
    "SharedStorage",
    "EaseMLServer",
    "EaseMLApp",
]
