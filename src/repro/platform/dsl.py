"""Tokenizer and recursive-descent parser for the ease.ml DSL.

Grammar (Figure 2 of the paper)::

    prog         ::= '{' 'input' ':' data_type ',' 'output' ':' data_type '}'
    data_type    ::= '{' '[' nonrec_field* ']' ',' '[' rec_field* ']' '}'
    nonrec_field ::= 'Tensor' '[' int+ ']'
                   | field_name '::' 'Tensor' '[' int+ ']'
    rec_field    ::= field_name
    field_name   ::= [a-z0-9_]+

Whitespace is insignificant; list items are comma-separated.  The
parser produces :class:`repro.platform.schema.Program` values, and
``Program.render()`` emits canonical text the parser round-trips.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.platform.schema import (
    DataType,
    NonRecField,
    Program,
    TensorType,
)


class DSLSyntaxError(ValueError):
    """Raised on malformed ease.ml programs, with position context."""

    def __init__(self, message: str, position: int, text: str) -> None:
        snippet = text[max(0, position - 20) : position + 20]
        super().__init__(
            f"{message} at position {position}: ...{snippet!r}..."
        )
        self.position = position


@dataclass(frozen=True)
class Token:
    kind: str  # one of: lbrace rbrace lbracket rbracket comma colon
    #            dcolon ident int tensor input output
    value: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<dcolon>::)
  | (?P<lbrace>\{) | (?P<rbrace>\})
  | (?P<lbracket>\[) | (?P<rbracket>\])
  | (?P<comma>,) | (?P<colon>:)
  | (?P<int>\d+)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"Tensor": "tensor", "input": "input", "output": "output"}


def tokenize(text: str) -> List[Token]:
    """Split DSL text into tokens; raises :class:`DSLSyntaxError`."""
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise DSLSyntaxError(
                f"unexpected character {text[position]!r}", position, text
            )
        kind = match.lastgroup
        value = match.group()
        if kind != "ws":
            if kind == "word":
                kind = _KEYWORDS.get(value, "ident")
            tokens.append(Token(kind, value, position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over a token stream."""

    def __init__(self, tokens: Sequence[Token], text: str) -> None:
        self._tokens = list(tokens)
        self._text = text
        self._index = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Optional[Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise DSLSyntaxError(
                "unexpected end of program", len(self._text), self._text
            )
        self._index += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._advance()
        if token.kind != kind:
            raise DSLSyntaxError(
                f"expected {kind}, found {token.value!r}",
                token.position,
                self._text,
            )
        return token

    def _check(self, kind: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == kind

    # -- grammar productions -------------------------------------------
    def parse_program(self) -> Program:
        self._expect("lbrace")
        self._expect("input")
        self._expect("colon")
        input_type = self.parse_data_type()
        self._expect("comma")
        self._expect("output")
        self._expect("colon")
        output_type = self.parse_data_type()
        self._expect("rbrace")
        trailing = self._peek()
        if trailing is not None:
            raise DSLSyntaxError(
                f"unexpected trailing input {trailing.value!r}",
                trailing.position,
                self._text,
            )
        return Program(input_type, output_type)

    def parse_data_type(self) -> DataType:
        self._expect("lbrace")
        self._expect("lbracket")
        tensors: List[NonRecField] = []
        while not self._check("rbracket"):
            tensors.append(self.parse_nonrec_field())
            if self._check("comma"):
                self._advance()
            else:
                break
        self._expect("rbracket")
        self._expect("comma")
        self._expect("lbracket")
        rec: List[str] = []
        while not self._check("rbracket"):
            rec.append(self._expect("ident").value)
            if self._check("comma"):
                self._advance()
            else:
                break
        self._expect("rbracket")
        self._expect("rbrace")
        return DataType(tuple(tensors), tuple(rec))

    def parse_nonrec_field(self) -> NonRecField:
        name: Optional[str] = None
        if self._check("ident"):
            name = self._advance().value
            self._expect("dcolon")
        self._expect("tensor")
        self._expect("lbracket")
        dims: List[int] = [int(self._expect("int").value)]
        while self._check("comma"):
            self._advance()
            dims.append(int(self._expect("int").value))
        self._expect("rbracket")
        return NonRecField(TensorType(tuple(dims)), name)


def parse_program(text: str, *, name: str = "") -> Program:
    """Parse DSL text into a :class:`Program`.

    >>> p = parse_program("{input: {[Tensor[256,256,3]], []}, "
    ...                   "output: {[Tensor[3]], []}}")
    >>> p.input.tensor_shapes()
    ((256, 256, 3),)
    """
    program = _Parser(tokenize(text), text).parse_program()
    if name:
        program = Program(program.input, program.output, name=name)
    return program


def program_from_shapes(
    input_shape: Iterable[int],
    output_shape: Iterable[int],
    *,
    name: str = "",
) -> Program:
    """The introduction's shorthand: ``Input = [256,256,3] Output = [3]``."""
    return Program(
        DataType((NonRecField(TensorType(tuple(input_shape))),), ()),
        DataType((NonRecField(TensorType(tuple(output_shape))),), ()),
        name=name,
    )
