"""Typed data objects: the system data types of Figures 2–3.

A ``data_type`` has two components (Section 2.1):

* the *non-recursive* component — a list of constant-sized tensors,
  optionally named;
* the *recursive* component — a list of named fields of the same
  object type ("pointers" building chains and trees; the translation
  assumes no object reuse, i.e. DAGs without loops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

_FIELD_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def is_valid_field_name(name: str) -> bool:
    """``field_name ::= [a-z0-9_]*`` (non-empty in practice)."""
    return bool(name) and all(ch in _FIELD_NAME_CHARS for ch in name)


@dataclass(frozen=True)
class TensorType:
    """A constant-shape tensor, e.g. ``Tensor[256, 256, 3]``."""

    shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        if not shape:
            raise ValueError("a tensor needs at least one dimension")
        if any(s < 1 for s in shape):
            raise ValueError(f"tensor dimensions must be >= 1, got {shape}")
        object.__setattr__(self, "shape", shape)

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        out = 1
        for s in self.shape:
            out *= s
        return out

    def render(self) -> str:
        return f"Tensor[{', '.join(str(s) for s in self.shape)}]"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


@dataclass(frozen=True)
class NonRecField:
    """One non-recursive field: a tensor, optionally named."""

    tensor: TensorType
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.name is not None and not is_valid_field_name(self.name):
            raise ValueError(
                f"invalid field name {self.name!r} "
                "(must match [a-z0-9_]+)"
            )

    def render(self) -> str:
        if self.name is None:
            return self.tensor.render()
        return f"{self.name} :: {self.tensor.render()}"


@dataclass(frozen=True)
class DataType:
    """``data_type ::= {nonrec_field list, rec_field list}``."""

    tensors: Tuple[NonRecField, ...] = ()
    rec_fields: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        tensors = tuple(self.tensors)
        for item in tensors:
            if not isinstance(item, NonRecField):
                raise TypeError(
                    "tensors entries must be NonRecField, got "
                    f"{type(item).__name__}"
                )
        rec = tuple(str(name) for name in self.rec_fields)
        for name in rec:
            if not is_valid_field_name(name):
                raise ValueError(
                    f"invalid recursive field name {name!r} "
                    "(must match [a-z0-9_]+)"
                )
        if len(set(rec)) != len(rec):
            raise ValueError(f"duplicate recursive field names in {rec}")
        object.__setattr__(self, "tensors", tensors)
        object.__setattr__(self, "rec_fields", rec)

    @property
    def is_recursive(self) -> bool:
        return bool(self.rec_fields)

    @property
    def flat_size(self) -> int:
        """Total scalar count of the non-recursive component."""
        return sum(f.tensor.size for f in self.tensors)

    def tensor_shapes(self) -> Tuple[Tuple[int, ...], ...]:
        return tuple(f.tensor.shape for f in self.tensors)

    def render(self) -> str:
        nonrec = ", ".join(f.render() for f in self.tensors)
        rec = ", ".join(self.rec_fields)
        return f"{{[{nonrec}], [{rec}]}}"


@dataclass(frozen=True)
class Program:
    """``prog ::= {input: data_type, output: data_type}``."""

    input: DataType
    output: DataType
    name: str = field(default="", compare=False)

    def render(self) -> str:
        return (
            f"{{input: {self.input.render()}, "
            f"output: {self.output.render()}}}"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def tensor(*shape: int, name: Optional[str] = None) -> NonRecField:
    """Convenience builder: ``tensor(256, 256, 3, name="field1")``."""
    return NonRecField(TensorType(tuple(shape)), name)
