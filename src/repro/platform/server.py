"""The ease.ml server: declarative apps over multi-tenant scheduling.

This is the end-to-end composition of Figure 1:

1. users register *apps* by submitting a DSL program (schema matching
   generates candidate models into the user-level task pool);
2. users ``feed`` input/output pairs (stored centrally) and may
   ``refine`` them (toggle noisy labels off);
3. the server runs the multi-tenant model-selection loop — HYBRID
   user-picking with cost-aware GP-UCB model-picking by default — and
   live-trains candidates from the model zoo;
4. ``infer`` answers with the best model found so far for that app.

Substitution note (DESIGN.md §5): the paper's candidate models for
image workloads are GPU-trained CNNs.  Live training here instantiates
the numpy model zoo instead, while ``EaseMLApp.paper_candidates``
still exposes the faithful Figure 4 candidate list (with normalization
variants) for inspection and trace-driven experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.beta import AlgorithmOneBeta
from repro.core.model_picking import GPUCBPicker
from repro.core.multitenant import MultiTenantScheduler, StepRecord
from repro.core.oracles import Observation, RewardOracle
from repro.core.user_picking import (
    GreedyPicker,
    HybridPicker,
    RandomUserPicker,
    RoundRobinPicker,
    UserPicker,
)
from repro.engine.clock import SimClock
from repro.engine.events import EventKind, EventLog
from repro.gp.covariance import covariance_from_features
from repro.gp.kernels import RBF, ConstantKernel
from repro.ml.base import Estimator, train_test_split
from repro.ml.preprocessing import StandardScaler
from repro.ml.zoo import ModelZoo, default_zoo
from repro.platform.candidates import CandidateModel, generate_candidates
from repro.platform.dsl import parse_program
from repro.platform.normalization import (
    NormalizationFunction,
    default_normalization_family,
    prescale_unit,
)
from repro.platform.schema import Program
from repro.platform.storage import ExampleStore, SharedStorage
from repro.platform.templates import Template, WorkloadKind, match_template
from repro.errors import ApiError, ApiErrorCode
from repro.utils.rng import RandomState, SeedLike

#: Workload kinds the live trainer can serve (classification-shaped).
_TRAINABLE_KINDS = (
    WorkloadKind.IMAGE_CLASSIFICATION,
    WorkloadKind.TIMESERIES_CLASSIFICATION,
    WorkloadKind.TREE_CLASSIFICATION,
    WorkloadKind.GENERAL_CLASSIFICATION,
)


@dataclass(frozen=True)
class LiveCandidate:
    """One trainable candidate: a zoo entry plus optional normalization."""

    zoo_name: str
    normalization: Optional[NormalizationFunction] = None

    @property
    def name(self) -> str:
        if self.normalization is None:
            return self.zoo_name
        return f"{self.zoo_name}+{self.normalization.name}"


@dataclass
class TrainingOutcome:
    """One completed training run for an app."""

    step: int
    candidate: str
    accuracy: float
    cost: float
    improved: bool


class EaseMLApp:
    """One registered user application (the generated "binaries")."""

    def __init__(
        self,
        name: str,
        program: Program,
        store: ExampleStore,
        server: "EaseMLServer",
    ) -> None:
        self.name = name
        self.program = program
        self.store = store
        self._server = server
        self.template: Template = match_template(program)
        #: The faithful Figure 4 candidate list (paper model names).
        self.paper_candidates: List[CandidateModel] = generate_candidates(
            program
        )
        #: What the live trainer will actually run (zoo-backed).
        self.live_candidates: List[LiveCandidate] = (
            server._build_live_candidates(self)
        )
        self.history: List[TrainingOutcome] = []
        self.best_accuracy: float = -math.inf
        self.best_candidate: Optional[str] = None
        #: ``step`` of the training run that produced the served model
        #: (the versioning half of batch inference: clients can tell
        #: which run answered).
        self.best_version: Optional[int] = None
        #: A closed app is retired from scheduling (its tenant departed)
        #: but keeps serving ``infer`` from its best model.
        self.closed: bool = False
        self._best_estimator: Optional[Estimator] = None
        self._best_transform: Optional[
            Callable[[np.ndarray], np.ndarray]
        ] = None
        self.n_classes: int = program.output.flat_size

    # ------------------------------------------------------------------
    # The three operators
    # ------------------------------------------------------------------
    def feed(
        self,
        inputs: Sequence[np.ndarray],
        outputs: Sequence[Union[int, np.ndarray]],
    ) -> List[int]:
        """Store input/output example pairs (the ``feed`` operator).

        Outputs may be integer class labels (converted to one-hot of
        the declared output size) or full output tensors.
        """
        if len(inputs) != len(outputs):
            raise ValueError(
                f"got {len(inputs)} inputs but {len(outputs)} outputs"
            )
        ids: List[int] = []
        input_size = self.program.input.flat_size
        for x, y in zip(inputs, outputs):
            x = np.asarray(x, dtype=float)
            if x.size != input_size:
                raise ValueError(
                    f"input has {x.size} scalars, schema declares "
                    f"{input_size}"
                )
            y_vec = self._encode_output(y)
            ids.append(self.store.add(x, y_vec))
        self._server.log.append(
            self._server.clock.now, EventKind.FEED, app=self.name,
            count=len(ids),
        )
        self._server._notify_persist(
            "feed", app=self.name, inputs=inputs, outputs=outputs,
            example_ids=list(ids),
        )
        return ids

    def _encode_output(self, y: Union[int, np.ndarray]) -> np.ndarray:
        if isinstance(y, (int, np.integer)):
            label = int(y)
            if not 0 <= label < self.n_classes:
                raise ValueError(
                    f"label {label} out of range [0, {self.n_classes})"
                )
            vec = np.zeros(self.n_classes)
            vec[label] = 1.0
            return vec
        y = np.asarray(y, dtype=float)
        if y.size != self.program.output.flat_size:
            raise ValueError(
                f"output has {y.size} scalars, schema declares "
                f"{self.program.output.flat_size}"
            )
        return y.ravel()

    def refine(self) -> List[Tuple[int, bool]]:
        """All fed examples and their enabled flags (``refine`` view)."""
        self._server.log.append(
            self._server.clock.now, EventKind.REFINE, app=self.name,
        )
        return [(e.example_id, e.enabled) for e in self.store]

    def set_example_enabled(self, example_id: int, enabled: bool) -> None:
        """Toggle one example on/off (the ``refine`` action)."""
        try:
            self.store.set_enabled(example_id, enabled)
        except IndexError:
            raise ApiError(
                ApiErrorCode.NOT_FOUND,
                f"app {self.name!r} has no example {example_id}; "
                f"{len(self.store)} example(s) are stored, with ids "
                f"0..{len(self.store) - 1} — list them with refine()",
                app=self.name,
                example_id=int(example_id),
            ) from None

    def infer(self, x: np.ndarray) -> int:
        """Predict with the best model so far (the ``infer`` operator)."""
        x = np.asarray(x, dtype=float).ravel()[None, :]
        return int(self.infer_rows(x)[0])

    def infer_rows(self, X: np.ndarray) -> np.ndarray:
        """Vectorized ``infer``: one ``(B, n)`` batch, one ``predict``.

        Every estimator in ``repro.ml`` predicts rows independently, so
        the batch answer is bit-identical to B scalar :meth:`infer`
        calls — but it costs one transform, one predict, and ONE
        :data:`EventKind.INFER` event (with a ``rows=`` attribute)
        instead of B of each.
        """
        if self._best_estimator is None:
            raise RuntimeError(
                f"app {self.name!r} has no trained model yet; run the "
                "server first"
            )
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(
                f"infer_rows expects a (B, n) matrix, got shape {X.shape}"
            )
        if self._best_transform is not None:
            X = self._best_transform(X)
        predictions = self._best_estimator.predict(X)
        self._server.log.append(
            self._server.clock.now, EventKind.INFER, app=self.name,
            rows=int(len(X)),
        )
        return np.asarray(predictions, dtype=np.int64)

    # ------------------------------------------------------------------
    # Reporting (Figure 3d's "report")
    # ------------------------------------------------------------------
    def report(self) -> List[TrainingOutcome]:
        """The improvement history (every run that beat the best)."""
        return [h for h in self.history if h.improved]

    def candidate_names(self) -> List[str]:
        return [c.name for c in self.live_candidates]


class _AppOracle(RewardOracle):
    """RewardOracle that live-trains app candidates on fed examples."""

    def __init__(self, server: "EaseMLServer") -> None:
        self._server = server

    @property
    def n_users(self) -> int:
        return len(self._server.apps)

    def n_models(self, user: int) -> int:
        return len(self._server.apps[user].live_candidates)

    def costs(self, user: int) -> np.ndarray:
        return self._server._cost_estimates[user].copy()

    def observe(self, user: int, model: int) -> Observation:
        self._check_pair(user, model)
        return self._server._train_candidate(user, model)


class EaseMLServer:
    """The shared ease.ml service instance.

    Parameters
    ----------
    zoo:
        Model zoo used for live training (default: :func:`default_zoo`).
    strategy:
        User-picking strategy name: ``"hybrid"`` (ease.ml default),
        ``"greedy"``, ``"round_robin"`` or ``"random"``.
    cost_aware:
        Use cost-aware GP-UCB model picking (the §3.2 twist).
    test_fraction:
        Held-out fraction of each app's enabled examples used to score
        candidates.
    include_normalization:
        Expand image-shaped apps with the Figure 5 family.
    runtime_placement:
        Opt-in event-driven execution backend.  ``None`` (default)
        keeps the seed's synchronous loop; a placement-policy name
        (``"single"``, ``"dedicated"``, ``"partition"``) routes
        training jobs through :class:`repro.runtime.ClusterRuntime`
        via :class:`repro.runtime.AsyncClusterOracle`, so the
        scheduler dispatches concurrently and absorbs results in
        completion order.  Training outcomes are computed at dispatch
        (the simulated job then occupies the cluster for its cost)
        but applied to app state — best model, history, improvement
        events — only when the simulated job *completes*, so app
        status and ``infer`` never reflect jobs still in flight; the
        shared clock and event log record the concurrent timeline.
    n_gpus, scaling_efficiency:
        Pool shape for the runtime backend (ignored when synchronous).
    preemption_overhead:
        Single-GPU work units lost per preemption on the runtime
        backend (checkpoint/restore cost; ignored when synchronous).
    """

    _STRATEGIES = ("hybrid", "greedy", "round_robin", "random")

    def __init__(
        self,
        zoo: Optional[ModelZoo] = None,
        *,
        strategy: str = "hybrid",
        cost_aware: bool = True,
        gp_noise: float = 0.05,
        test_fraction: float = 0.3,
        include_normalization: bool = True,
        min_examples: int = 10,
        runtime_placement: Optional[str] = None,
        n_gpus: int = 24,
        scaling_efficiency: float = 0.9,
        preemption_overhead: float = 0.0,
        seed: SeedLike = 0,
    ) -> None:
        if strategy not in self._STRATEGIES:
            raise ValueError(
                f"strategy must be one of {self._STRATEGIES}, "
                f"got {strategy!r}"
            )
        if runtime_placement is not None:
            from repro.runtime.placement import PLACEMENT_POLICIES

            if runtime_placement not in PLACEMENT_POLICIES:
                raise ValueError(
                    f"runtime_placement must be None or one of "
                    f"{sorted(PLACEMENT_POLICIES)}, "
                    f"got {runtime_placement!r}"
                )
        self.zoo = zoo if zoo is not None else default_zoo()
        self.strategy = strategy
        self.cost_aware = bool(cost_aware)
        self.gp_noise = float(gp_noise)
        self.test_fraction = float(test_fraction)
        self.include_normalization = bool(include_normalization)
        self.min_examples = int(min_examples)
        self.runtime_placement = runtime_placement
        self.n_gpus = int(n_gpus)
        self.scaling_efficiency = float(scaling_efficiency)
        self.preemption_overhead = float(preemption_overhead)
        self._rng = RandomState(seed)

        self.storage = SharedStorage()
        self.apps: List[EaseMLApp] = []
        self.clock = SimClock()
        self.log = EventLog()
        #: Persistence observers: callbacks fired on feed / admit /
        #: retire so a write-ahead journal (repro.persist) can record
        #: platform mutations even when they bypass the gateway.
        self._persist_hooks: List[Callable[[str, dict], None]] = []
        self._scheduler: Optional[MultiTenantScheduler] = None
        self._runtime_oracle = None
        # Runtime backend: outcomes banked at dispatch, keyed by the
        # job id the imminent submit will create, applied on completion.
        self._deferred_outcomes: Dict[int, Tuple] = {}
        # Fired (under whatever lock the caller holds) whenever a
        # training outcome improves an app's best model; the serving
        # layer uses this to invalidate prediction caches and publish
        # promotion events.
        self._promotion_callbacks: List[Callable[[EaseMLApp], None]] = []
        # Keyed by stable tenant id (the app's index in self.apps) so
        # membership can be sparse: late arrivals fill their slot when
        # admitted, never shifting anyone else's.
        self._cost_estimates: Dict[int, np.ndarray] = {}
        self._splits: Dict[
            int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    # ------------------------------------------------------------------
    # Persistence hooks
    # ------------------------------------------------------------------
    def on_persist(self, callback: Callable[[str, dict], None]) -> None:
        """Observe platform mutations for write-ahead journaling.

        ``callback(kind, info)`` fires after a mutation lands:
        ``"feed"`` (info: app, inputs, outputs, example_ids),
        ``"admit"`` (info: app, user) and ``"retire"`` (info: app,
        user, cancelled).  The service gateway's durable control plane
        (:mod:`repro.persist`) registers here so these records reach
        the journal in the order they happened.
        """
        self._persist_hooks.append(callback)

    def on_promotion(self, callback: Callable[[EaseMLApp], None]) -> None:
        """Register ``callback(app)`` to fire when a training outcome
        becomes an app's new best model.

        The callback runs inline inside :meth:`_apply_outcome` — under
        the gateway lock when training completes through the service —
        so it must be fast and must not call back into the platform.
        """
        self._promotion_callbacks.append(callback)

    def _notify_persist(self, kind: str, **info) -> None:
        for callback in self._persist_hooks:
            callback(kind, info)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_app(
        self, program: Union[str, Program], name: str
    ) -> EaseMLApp:
        """Register a new user application from DSL text or a Program.

        Registration is open for the lifetime of the server: an app
        registered after scheduling has started simply becomes a
        not-yet-admitted tenant — feed it past ``min_examples`` and it
        joins the live run (a ``USER_ARRIVED`` event) at the next
        :meth:`admit_app` / :meth:`run` / training submit.
        """
        if isinstance(program, str):
            program = parse_program(program, name=name)
        if name in self.storage:
            raise ValueError(f"an app named {name!r} already exists")
        store = self.storage.create(name)
        app = EaseMLApp(name, program, store, self)
        if app.template.kind not in _TRAINABLE_KINDS:
            raise NotImplementedError(
                f"live training for {app.template.kind.value!r} workloads "
                "is not supported; use trace-driven experiments instead"
            )
        self.apps.append(app)
        if self._runtime_oracle is not None:
            # The trainer is already live: grow a row for the newcomer
            # now (placeholder planning costs until admission profiles
            # the real ones; inactive tenants are never dispatched).
            user = len(self.apps) - 1
            self._runtime_oracle.trainer.add_user(
                self._app_tasks(user, app),
                np.ones(len(app.live_candidates)),
            )
        return app

    def _build_live_candidates(self, app: EaseMLApp) -> List[LiveCandidate]:
        kind = match_template(app.program).kind
        candidates = [LiveCandidate(name) for name in self.zoo.names()]
        image_shaped = kind in (WorkloadKind.IMAGE_CLASSIFICATION,)
        if self.include_normalization and image_shaped:
            for zoo_name in self.zoo.names():
                for func in default_normalization_family():
                    candidates.append(LiveCandidate(zoo_name, func))
        return candidates

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _make_user_picker(self) -> UserPicker:
        if self.strategy == "hybrid":
            return HybridPicker(seed=self._rng)
        if self.strategy == "greedy":
            return GreedyPicker(seed=self._rng)
        if self.strategy == "round_robin":
            return RoundRobinPicker()
        return RandomUserPicker(seed=self._rng)

    def _candidate_features(self, app: EaseMLApp, n: int, d: int, c: int):
        """Feature vectors for the GP prior over an app's candidates."""
        families = sorted({self.zoo[lc.zoo_name].family for lc in
                           app.live_candidates})
        fam_index = {f: i for i, f in enumerate(families)}
        rows = []
        costs = []
        for lc in app.live_candidates:
            entry = self.zoo[lc.zoo_name]
            cost = entry.cost_estimate(n, d, c)
            one_hot = [0.0] * len(families)
            one_hot[fam_index[entry.family]] = 1.0
            k = lc.normalization.k if lc.normalization else 0.0
            rows.append([np.log10(cost)] + one_hot + [k])
            costs.append(cost)
        features = np.asarray(rows)
        scaler = StandardScaler().fit(features)
        return scaler.transform(features), np.asarray(costs)

    def _build_picker(self, user: int, app: EaseMLApp) -> GPUCBPicker:
        """Profile one app and build its GP-UCB picker.

        Fills the per-tenant split and planning-cost tables under the
        app's stable id as a side effect.
        """
        X, Y = app.store.enabled_arrays()
        y = np.argmax(Y, axis=1) if Y.shape[1] > 1 else (
            Y.ravel() > 0.5
        ).astype(int)
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_fraction=self.test_fraction, seed=self._rng
        )
        self._splits[user] = (X_train, X_test, y_train, y_test)
        n, d = X_train.shape
        c = max(int(np.unique(y_train).shape[0]), 2)
        features, costs = self._candidate_features(app, n, d, c)
        self._cost_estimates[user] = costs
        prior = covariance_from_features(
            ConstantKernel(0.09) * RBF(1.0), features
        )
        return GPUCBPicker(
            prior,
            AlgorithmOneBeta(len(app.live_candidates)),
            costs if self.cost_aware else None,
            noise=self.gp_noise,
            prior_mean=np.full(len(app.live_candidates), 0.5),
        )

    def _prepare(self, *, only_ready: bool = False) -> None:
        """Build the scheduler over the current tenant membership.

        By default every (open) app must be ready — the strict
        paper-style start, where forgetting to feed an app is an error.
        With ``only_ready`` the ready subset starts scheduling and the
        rest remain unadmitted until :meth:`admit_app` brings them in
        as live arrivals (the service gateway's policy).
        """
        if not self.apps:
            raise RuntimeError("no apps registered")
        self._cost_estimates = {}
        self._splits = {}
        pickers: Dict[int, GPUCBPicker] = {}
        oracle = _AppOracle(self)
        for user, app in enumerate(self.apps):
            if app.closed:
                continue
            if app.store.n_enabled < self.min_examples:
                if only_ready:
                    continue
                raise RuntimeError(
                    f"app {app.name!r} has {app.store.n_enabled} enabled "
                    f"examples; at least {self.min_examples} are required "
                    "before scheduling"
                )
            pickers[user] = self._build_picker(user, app)
        if not pickers:
            raise RuntimeError(
                f"no app has {self.min_examples} enabled examples yet; "
                "feed more before scheduling"
            )
        if self.runtime_placement is not None:
            oracle = self._build_runtime_oracle()
        self._scheduler = MultiTenantScheduler(
            oracle, pickers, self._make_user_picker()
        )

    def _app_tasks(self, user: int, app: EaseMLApp):
        """Per-candidate training callables for the runtime trainer."""

        def task(model: int):
            def run() -> Tuple[float, float]:
                observation = self._train_candidate(
                    user, model, synchronous=False
                )
                return observation.reward, observation.cost

            return run

        return [task(m) for m in range(len(app.live_candidates))]

    def _build_runtime_oracle(self):
        """Route training through the event-driven cluster runtime."""
        from repro.engine.cluster import GPUPool
        from repro.engine.trainer import CallableTrainer
        from repro.runtime.oracle import AsyncClusterOracle
        from repro.runtime.placement import make_placement

        # Every registered app gets a trainer row (ids are app
        # positions); apps not yet admitted carry placeholder planning
        # costs that admission replaces with profiled ones.
        tasks = [
            self._app_tasks(u, app) for u, app in enumerate(self.apps)
        ]
        cost_rows = [
            self._cost_estimates.get(u, np.ones(len(app.live_candidates)))
            for u, app in enumerate(self.apps)
        ]
        trainer = CallableTrainer(tasks, cost_rows)
        self._runtime_oracle = AsyncClusterOracle(
            trainer,
            GPUPool(self.n_gpus, scaling_efficiency=self.scaling_efficiency),
            make_placement(self.runtime_placement),
            clock=self.clock,
            log=self.log,
            preemption_overhead=self.preemption_overhead,
        )
        self._runtime_oracle.runtime.on_completion(
            self._apply_completed_outcome
        )
        return self._runtime_oracle

    # ------------------------------------------------------------------
    # Dynamic tenant lifecycle
    # ------------------------------------------------------------------
    def is_admitted(self, name: str) -> bool:
        """Is this app an *active* tenant of the running scheduler?"""
        app = self.get_app(name)
        if self._scheduler is None:
            return False
        return self._scheduler.tenants.is_active(self.apps.index(app))

    def admit_app(self, name: str) -> int:
        """Admit an app to the live scheduler; returns its tenant id.

        Idempotent for already-active tenants.  The newcomer is
        profiled (split, planning costs, GP prior) exactly like an
        initial tenant, joins the scheduler's active set, and — on the
        runtime backend — lands in the event log as ``USER_ARRIVED``.
        """
        app = self.get_app(name)
        user = self.apps.index(app)
        if self._scheduler is None:
            raise RuntimeError(
                "scheduling has not started; call run() (or the "
                "gateway's submit path) first"
            )
        if self._scheduler.tenants.is_active(user):
            return user
        if app.closed:
            raise RuntimeError(f"app {name!r} is closed")
        if app.store.n_enabled < self.min_examples:
            raise RuntimeError(
                f"app {app.name!r} has {app.store.n_enabled} enabled "
                f"examples; at least {self.min_examples} are required "
                "before scheduling"
            )
        picker = self._build_picker(user, app)
        costs = self._cost_estimates[user]
        self._scheduler.add_tenant(picker, costs, tenant_id=user)
        if self._runtime_oracle is not None:
            self._runtime_oracle.trainer.update_costs(user, costs)
            runtime = self._runtime_oracle.runtime
            runtime.user_arrives(user)
            runtime.run_until(self.clock.now)
        else:
            self.log.append(
                self.clock.now, EventKind.USER_ARRIVED, user=user
            )
        self._notify_persist("admit", app=name, user=user)
        return user

    def retire_app(self, name: str) -> List[int]:
        """Close an app: retire its tenant from the live run.

        Emits ``USER_DEPARTED``; the departed tenant's queued jobs are
        cancelled (returned as job ids), running jobs drain through the
        normal completion path, and its share of the pool is released
        at the next placement re-cut.  The app keeps serving ``infer``
        from its best model — closing only stops training.
        """
        app = self.get_app(name)
        if app.closed:
            raise RuntimeError(f"app {name!r} is already closed")
        app.closed = True
        user = self.apps.index(app)
        cancelled: List[int] = []
        if self._scheduler is None or not self._scheduler.tenants.is_active(
            user
        ):
            return cancelled
        self._scheduler.retire_tenant(user)
        if self._runtime_oracle is not None:
            runtime = self._runtime_oracle.runtime
            before = {j.job_id for j in runtime.failed_jobs()}
            runtime.user_departs(user)
            runtime.run_until(self.clock.now)
            cancelled = sorted(
                j.job_id
                for j in runtime.failed_jobs()
                if j.job_id not in before and j.user == user
            )
        else:
            self.log.append(
                self.clock.now, EventKind.USER_DEPARTED, user=user
            )
        self._notify_persist(
            "retire", app=name, user=user, cancelled=list(cancelled)
        )
        return cancelled

    def _admit_ready(self) -> None:
        """Admit every fed-past-threshold app not yet in the live run."""
        for user, app in enumerate(self.apps):
            if app.closed or self._scheduler.tenants.is_active(user):
                continue
            if app.store.n_enabled >= self.min_examples:
                self.admit_app(app.name)

    def _train_candidate(
        self, user: int, model: int, *, synchronous: bool = True
    ) -> Observation:
        app = self.apps[user]
        candidate = app.live_candidates[model]
        X_train, X_test, y_train, y_test = self._splits[user]

        transform = _make_transform(candidate.normalization)
        Xtr = transform(X_train)
        Xte = transform(X_test)

        entry = self.zoo[candidate.zoo_name]
        estimator = entry.make(int(self._rng.integers(0, 2**31 - 1)))
        estimator.fit(Xtr, y_train)
        accuracy = estimator.score(Xte, y_test)
        cost = max(estimator.work_units / 1e5, 1e-6)
        if synchronous:
            self.clock.advance(cost)
            self._apply_outcome(
                user, model, estimator, transform, accuracy, cost
            )
        else:
            # Runtime backend: the outcome is computed now (the
            # simulated job occupies the cluster for its cost) but
            # applied only at job completion, so app state never
            # reflects jobs still in flight.  Every trainer call is
            # immediately followed by the runtime submit that creates
            # job id len(jobs) — that adjacency is the keying
            # invariant here.
            next_job_id = len(self._runtime_oracle.runtime.jobs)
            self._deferred_outcomes[next_job_id] = (
                user, model, estimator, transform, accuracy, cost
            )
        return Observation(float(accuracy), float(cost))

    def _apply_outcome(
        self, user, model, estimator, transform, accuracy, cost
    ) -> None:
        """Land one training result in app state (best model, history)."""
        app = self.apps[user]
        candidate = app.live_candidates[model]
        improved = accuracy > app.best_accuracy
        if improved:
            app.best_accuracy = accuracy
            app.best_candidate = candidate.name
            app.best_version = len(app.history) + 1
            app._best_estimator = estimator
            app._best_transform = transform
            # App-level improvement event, identical for both backends
            # (the runtime additionally logs the per-job lifecycle).
            self.log.append(
                self.clock.now, EventKind.MODEL_RETURNED, app=app.name,
                candidate=candidate.name, accuracy=accuracy,
            )
            for callback in self._promotion_callbacks:
                callback(app)
        app.history.append(
            TrainingOutcome(
                step=len(app.history) + 1,
                candidate=candidate.name,
                accuracy=accuracy,
                cost=cost,
                improved=improved,
            )
        )

    def _apply_completed_outcome(self, job) -> None:
        """Runtime completion hook: apply the job's banked outcome."""
        pending = self._deferred_outcomes.pop(job.job_id, None)
        if pending is not None:
            self._apply_outcome(*pending)

    def run(
        self,
        *,
        max_steps: Optional[int] = None,
        cost_budget: Optional[float] = None,
    ) -> List[StepRecord]:
        """Run the multi-tenant loop; returns the new step records.

        With the synchronous backend steps execute one at a time; with
        ``runtime_placement`` set, up to one job per app is in flight
        on the simulated cluster and observations land in completion
        order.
        """
        if self._scheduler is None:
            self._prepare()
        else:
            # Dynamic membership: apps registered (and fed) since the
            # last run join as live arrivals before this one.
            self._admit_ready()
        before = self._scheduler.step_count
        if self._runtime_oracle is not None:
            self._runtime_oracle.run_concurrent(
                self._scheduler,
                max_jobs=max_steps,
                cost_budget=(
                    self._scheduler.total_cost + cost_budget
                    if cost_budget is not None
                    else None
                ),
            )
        else:
            self._scheduler.run(max_steps=(
                before + max_steps if max_steps is not None else None
            ), cost_budget=(
                self._scheduler.total_cost + cost_budget
                if cost_budget is not None
                else None
            ))
        return self._scheduler.records[before:]

    @property
    def scheduler(self) -> Optional[MultiTenantScheduler]:
        return self._scheduler

    def get_app(self, name: str) -> EaseMLApp:
        for app in self.apps:
            if app.name == name:
                return app
        raise ApiError(
            ApiErrorCode.NOT_FOUND,
            f"no app named {name!r}; registered apps: "
            f"{sorted(a.name for a in self.apps)} — register it first "
            "with register_app()",
            app=name,
        )


def _make_transform(
    normalization: Optional[NormalizationFunction],
) -> Callable[[np.ndarray], np.ndarray]:
    """Row-wise input transform for a candidate's normalization."""

    if normalization is None:
        return lambda X: np.asarray(X, dtype=float)

    def transform(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        out = np.empty_like(X)
        for i in range(X.shape[0]):
            out[i] = normalization(prescale_unit(X[i]))
        return out

    return transform
