"""Shared storage: the example store behind ``feed`` and ``refine``.

Every ``feed`` lands the input/output pair in the centralized store
(Figure 1's "Shared Storage"); ``refine`` exposes all pairs a user has
ever fed and lets them be turned on and off — the data-cleaning loop
the paper describes for weak/distant supervision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np


@dataclass
class Example:
    """One stored input/output pair."""

    example_id: int
    x: np.ndarray
    y: np.ndarray
    enabled: bool = True


class ExampleStore:
    """Append-only example collection with enable/disable flags."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._examples: List[Example] = []

    def add(self, x: np.ndarray, y: np.ndarray) -> int:
        """Store one pair; returns its id."""
        example = Example(
            example_id=len(self._examples),
            x=np.asarray(x, dtype=float),
            y=np.asarray(y, dtype=float),
        )
        self._examples.append(example)
        return example.example_id

    def add_pairs(
        self, pairs: Iterable[Tuple[np.ndarray, np.ndarray]]
    ) -> List[int]:
        """Store many pairs; returns their ids."""
        return [self.add(x, y) for x, y in pairs]

    def __len__(self) -> int:
        return len(self._examples)

    def __iter__(self):
        return iter(self._examples)

    def get(self, example_id: int) -> Example:
        if not 0 <= example_id < len(self._examples):
            raise IndexError(
                f"example {example_id} out of range [0, {len(self._examples)})"
            )
        return self._examples[example_id]

    def set_enabled(self, example_id: int, enabled: bool) -> None:
        """The ``refine`` toggle."""
        self.get(example_id).enabled = bool(enabled)

    @property
    def n_enabled(self) -> int:
        return sum(1 for e in self._examples if e.enabled)

    def enabled_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked (X, Y) of the enabled examples.

        X rows are flattened inputs; Y rows are flattened outputs.
        """
        enabled = [e for e in self._examples if e.enabled]
        if not enabled:
            raise ValueError(
                f"store {self.name!r} has no enabled examples"
            )
        X = np.stack([e.x.ravel() for e in enabled])
        Y = np.stack([e.y.ravel() for e in enabled])
        return X, Y

    def summary(self) -> Dict[str, int]:
        return {
            "total": len(self._examples),
            "enabled": self.n_enabled,
            "disabled": len(self._examples) - self.n_enabled,
        }


class SharedStorage:
    """The server-side registry of per-app example stores."""

    def __init__(self) -> None:
        self._stores: Dict[str, ExampleStore] = {}

    def create(self, app_name: str) -> ExampleStore:
        if app_name in self._stores:
            raise ValueError(f"store {app_name!r} already exists")
        store = ExampleStore(app_name)
        self._stores[app_name] = store
        return store

    def get(self, app_name: str) -> ExampleStore:
        if app_name not in self._stores:
            raise KeyError(f"no store named {app_name!r}")
        return self._stores[app_name]

    def __contains__(self, app_name: str) -> bool:
        return app_name in self._stores

    def names(self) -> List[str]:
        return sorted(self._stores)

    def total_examples(self) -> int:
        return sum(len(s) for s in self._stores.values())
