"""Automatic input normalization (Figure 5).

Data that is image-*shaped* but not image-*ranged* — astrophysics and
proteomics tensors spanning ten orders of magnitude — is unusable for
models designed for pixel data.  ease.ml therefore augments the
candidate set: every function in the family

.. math:: f_k(x) = -x^{2k} + x^k

(applied to inputs pre-scaled into [0, 1]) paired with every consistent
model yields one additional candidate.  Each ``f_k`` is a concave bump
peaking at ``x = 2^{-1/k}`` with maximum ¼; ``rescale=True`` (default)
multiplies by 4 so outputs span [0, 1] like the figure's plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive

#: The k values shown in Figure 5.
DEFAULT_KS: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8)


@dataclass(frozen=True)
class NormalizationFunction:
    """One member ``f_k`` of the normalization family."""

    k: float
    rescale: bool = True

    def __post_init__(self) -> None:
        check_positive(self.k, "k")

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply ``f_k`` elementwise; input must lie in [0, 1]."""
        x = np.asarray(x, dtype=float)
        if np.any((x < 0.0) | (x > 1.0)):
            raise ValueError(
                "normalization input must be pre-scaled into [0, 1]"
            )
        xk = np.power(x, self.k)
        out = -xk * xk + xk  # -x^{2k} + x^k
        if self.rescale:
            out = 4.0 * out
        return out

    @property
    def peak(self) -> float:
        """The input value where ``f_k`` attains its maximum."""
        return float(2.0 ** (-1.0 / self.k))

    @property
    def name(self) -> str:
        return f"norm(k={self.k:g})"


def default_normalization_family(
    ks: Sequence[float] = DEFAULT_KS, *, rescale: bool = True
) -> Tuple[NormalizationFunction, ...]:
    """The candidate-generating family, one function per ``k``."""
    family = tuple(NormalizationFunction(float(k), rescale) for k in ks)
    if len({f.k for f in family}) != len(family):
        raise ValueError(f"duplicate k values in {list(ks)}")
    return family


def prescale_unit(x: np.ndarray) -> np.ndarray:
    """Affinely map an arbitrary-range tensor into [0, 1].

    This is the pre-step applied before ``f_k`` for data with a huge
    dynamic range; constant tensors map to 0.
    """
    x = np.asarray(x, dtype=float)
    lo = float(np.min(x))
    hi = float(np.max(x))
    if hi - lo < 1e-300:
        return np.zeros_like(x)
    return (x - lo) / (hi - lo)
