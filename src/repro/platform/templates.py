"""Template matching for candidate-model generation (Figure 4).

Each template constrains the input/output data types with a small
pattern language:

* the non-recursive component is matched by a list of *rank patterns*
  (a rank-3 entry matches any ``Tensor[A, B, C]``), optionally ending
  in ``*`` ("arbitrary tail of the array");
* the recursive component is matched by an exact field count, or ``*``
  for any number of recursive fields.

Matching proceeds **top to bottom** — from the most specific template
to the most general — and the first hit wins, exactly as the figure
prescribes.  The two "general" templates accept anything, so every
well-formed program matches something.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from repro.platform.schema import DataType, Program


class WorkloadKind(str, Enum):
    """The seven workload classes of Figure 4."""

    IMAGE_CLASSIFICATION = "image/tensor classification"
    IMAGE_RECOVERY = "image/tensor recovery"
    TIMESERIES_CLASSIFICATION = "time series classification"
    TIMESERIES_TRANSLATION = "time series translation"
    TREE_CLASSIFICATION = "tree classification"
    GENERAL_CLASSIFICATION = "general classification"
    GENERAL_AUTOENCODER = "general auto-encoder"


@dataclass(frozen=True)
class TypePattern:
    """Pattern for one data type.

    ``tensor_ranks`` lists the required tensor ranks, in order;
    ``tensor_tail`` allows any further tensors after them.  ``None``
    for ``rec_count`` means "any number of recursive fields".
    """

    tensor_ranks: Tuple[int, ...] = ()
    tensor_tail: bool = False
    rec_count: Optional[int] = 0

    def matches(self, data_type: DataType) -> bool:
        shapes = data_type.tensor_shapes()
        if self.tensor_tail:
            if len(shapes) < len(self.tensor_ranks):
                return False
        else:
            if len(shapes) != len(self.tensor_ranks):
                return False
        for rank, shape in zip(self.tensor_ranks, shapes):
            if len(shape) != rank:
                return False
        if self.rec_count is not None:
            if len(data_type.rec_fields) != self.rec_count:
                return False
        return True

    def render(self) -> str:
        parts = [f"Tensor[rank {r}]" for r in self.tensor_ranks]
        if self.tensor_tail:
            parts.append("*")
        rec = "*" if self.rec_count is None else str(self.rec_count)
        return f"{{[{', '.join(parts)}], [{rec} rec]}}"


@dataclass(frozen=True)
class Template:
    """One row of the Figure 4 table."""

    kind: WorkloadKind
    input_pattern: TypePattern
    output_pattern: TypePattern
    models: Tuple[str, ...]

    def matches(self, program: Program) -> bool:
        return self.input_pattern.matches(
            program.input
        ) and self.output_pattern.matches(program.output)


#: Figure 4 in code, in the figure's top-to-bottom matching order.
#: The image-classification model list enumerates the concrete set the
#: paper deploys (Section 5.1), which refines the figure's
#: "AlexNet, ResNet, GoogLeNet, …" shorthand.
TEMPLATES: Tuple[Template, ...] = (
    Template(
        WorkloadKind.IMAGE_CLASSIFICATION,
        TypePattern(tensor_ranks=(3,)),
        TypePattern(tensor_ranks=(1,)),
        (
            "NIN",
            "GoogLeNet",
            "ResNet-50",
            "AlexNet",
            "BN-AlexNet",
            "ResNet-18",
            "VGG-16",
            "SqueezeNet",
        ),
    ),
    Template(
        WorkloadKind.IMAGE_RECOVERY,
        TypePattern(tensor_ranks=(3,)),
        TypePattern(tensor_ranks=(3,)),
        ("Auto-encoder", "GAN", "pix2pix"),
    ),
    Template(
        WorkloadKind.TIMESERIES_CLASSIFICATION,
        TypePattern(tensor_ranks=(1,), tensor_tail=True, rec_count=1),
        TypePattern(tensor_ranks=(1,)),
        ("RNN", "LSTM", "bi-LSTM", "GRU"),
    ),
    Template(
        WorkloadKind.TIMESERIES_TRANSLATION,
        TypePattern(tensor_ranks=(1,), tensor_tail=True, rec_count=1),
        TypePattern(tensor_ranks=(1,), tensor_tail=True, rec_count=1),
        ("seq2seq",),
    ),
    Template(
        WorkloadKind.TREE_CLASSIFICATION,
        TypePattern(tensor_ranks=(1,), tensor_tail=True, rec_count=2),
        TypePattern(tensor_ranks=(1,)),
        ("Tree-RNN", "Tree-kernel-SVM"),
    ),
    Template(
        WorkloadKind.GENERAL_CLASSIFICATION,
        TypePattern(tensor_tail=True, rec_count=None),
        TypePattern(tensor_ranks=(1,)),
        ("Bit-level-RNN",),
    ),
    Template(
        WorkloadKind.GENERAL_AUTOENCODER,
        TypePattern(tensor_tail=True, rec_count=None),
        TypePattern(tensor_tail=True, rec_count=None),
        ("Bit-level-Auto-encoder",),
    ),
)


def match_template(program: Program) -> Template:
    """First matching template, top to bottom (always succeeds for
    well-formed programs — the last template accepts everything)."""
    for template in TEMPLATES:
        if template.matches(program):
            return template
    raise ValueError(  # pragma: no cover - general templates catch all
        f"no template matches program {program.render()}"
    )


def matching_templates(program: Program) -> List[Template]:
    """All templates that match (the first is the canonical choice)."""
    return [t for t in TEMPLATES if t.matches(program)]
