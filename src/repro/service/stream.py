"""Server-push event streaming (the SSE backend).

:class:`EventBroker` is a tiny fan-out hub the gateway publishes
serving-plane notifications into — job completions and model
promotions today; anything else tomorrow.  Each subscriber owns a
bounded queue; a slow consumer loses its *oldest* pending events
(counted per subscription) rather than stalling the publisher, which
may be holding the gateway lock.

Transport lives elsewhere: the asyncio HTTP frontend drains a
:class:`Subscription` from a worker thread and writes
``text/event-stream`` frames (``GET /v1/events?stream=1``); the
threading frontend does not offer streaming (one thread per
connection cannot afford open-ended subscribers).
"""

from __future__ import annotations

import json
import queue
import threading
from typing import Any, Dict, List, Optional

__all__ = ["EventBroker", "Subscription", "sse_frame"]

#: Pending events one subscriber may buffer before drop-oldest kicks
#: in; SSE consumers that fall further behind than this are browsing,
#: not listening.
SUBSCRIPTION_BUFFER = 256


class Subscription:
    """One subscriber's bounded event queue."""

    def __init__(
        self, broker: "EventBroker", tenant: Optional[str], buffer: int
    ) -> None:
        self._broker = broker
        #: When set, only events for this tenant (or with no tenant at
        #: all) are delivered.
        self.tenant = tenant
        self._queue: "queue.Queue[Dict[str, Any]]" = queue.Queue(
            maxsize=buffer
        )
        self.dropped = 0
        self.closed = False

    def _offer(self, event: Dict[str, Any]) -> None:
        while True:
            try:
                self._queue.put_nowait(event)
                return
            except queue.Full:
                try:
                    self._queue.get_nowait()
                    self.dropped += 1
                except queue.Empty:  # pragma: no cover - racing consumer
                    pass

    def get(self, timeout: float = 1.0) -> Optional[Dict[str, Any]]:
        """Next event, or None after ``timeout`` seconds of silence
        (the SSE loop uses the None beat to emit keep-alives and check
        for shutdown)."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        self.closed = True
        self._broker._unsubscribe(self)


class EventBroker:
    """Publish/subscribe hub for server-push notifications."""

    def __init__(self, buffer: int = SUBSCRIPTION_BUFFER) -> None:
        self._buffer = int(buffer)
        self._lock = threading.Lock()
        self._subscriptions: List[Subscription] = []
        #: Monotonic sequence number stamped on every event.
        self._seq = 0

    def subscribe(self, tenant: Optional[str] = None) -> Subscription:
        """Open a subscription; ``tenant`` scopes delivery to that
        tenant's events (plus tenant-less broadcasts)."""
        sub = Subscription(self, tenant, self._buffer)
        with self._lock:
            self._subscriptions.append(sub)
        return sub

    def _unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            try:
                self._subscriptions.remove(sub)
            except ValueError:
                pass

    @property
    def n_subscribers(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def publish(self, event_type: str, **payload: Any) -> int:
        """Fan an event out to every matching subscription; returns the
        number of subscribers offered the event.  Never blocks — safe
        to call while holding the gateway lock."""
        with self._lock:
            self._seq += 1
            event = {"seq": self._seq, "event": event_type, **payload}
            targets = [
                s
                for s in self._subscriptions
                if s.tenant is None
                or payload.get("tenant") is None
                or s.tenant == payload.get("tenant")
            ]
        for sub in targets:
            sub._offer(event)
        return len(targets)


def sse_frame(event: Dict[str, Any]) -> bytes:
    """Encode one event as a Server-Sent Events frame."""
    body = json.dumps(event, separators=(",", ":"), sort_keys=True)
    return (
        f"id: {event.get('seq', 0)}\n"
        f"event: {event.get('event', 'message')}\n"
        f"data: {body}\n\n"
    ).encode("utf-8")
