"""HTTP frontends: the typed API over REST-ish JSON routes.

Two interchangeable transports sit over
:class:`~repro.service.gateway.ServiceGateway`, selected by the
``frontend`` argument to :func:`serve` / :func:`serve_background`:

* ``"threading"`` — the stdlib ``ThreadingHTTPServer``: one OS thread
  per connection, every request a blocking ``gateway.handle`` call;
* ``"asyncio"`` — an event-loop server (``asyncio.start_server`` plus
  a small HTTP/1.1 codec, keep-alive preserved): read-path requests
  run inline on the loop (the gateway serves them lock-free from
  immutable snapshots), job polls and long-polls run on worker
  threads, and mutations flow through the gateway's per-tenant
  command queue — the loop never parks on the scheduler lock.

Both share one route table (:func:`route_request`): each route builds
one typed request, dispatches it, and writes the response's wire
form.  Errors — including anything unexpected — come back as a JSON
``{"error": {code, message, details}}`` body with the matching HTTP
status; a raw traceback never crosses the socket.

Routes (all under ``/v1``)::

    GET    /v1/info                           server metadata
    POST   /v1/apps                           register an app
    GET    /v1/apps                           list this tenant's apps
    GET    /v1/apps/{app}                     app status
    DELETE /v1/apps/{app}                     close (retire the tenant)
    POST   /v1/apps/{app}/examples            feed example pairs
    GET    /v1/apps/{app}/examples            refine view
    POST   /v1/apps/{app}/examples/{id}       toggle an example
    POST   /v1/apps/{app}/infer               predict
    POST   /v1/jobs                           submit async training
    GET    /v1/jobs[?app=NAME]                list job handles
    GET    /v1/jobs/{job_id}[?wait=SECONDS]   poll one handle
                                              (``wait`` long-polls)
    GET    /v1/events[?kinds=a,b&since=T]     event-log slice
    GET    /v1/events?stream=1                live Server-Sent Events
                                              (asyncio frontend only)

Authentication is ``Authorization: Bearer <token>``.
"""

from __future__ import annotations

import asyncio
import contextvars
import hmac
import json
import math
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _HTTP_REASONS
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.obs import (
    NULL_ACCESS_LOG,
    NULL_TRACER,
    AccessLogger,
    RequestContext,
    add_span,
    bind_request,
    clear_request,
    current_request,
    new_request_id,
    span,
)
from repro.obs.context import REQUEST_ID_HEADER, sanitize_client_id
from repro.service.api import (
    API_VERSION,
    ApiError,
    ApiErrorCode,
    AppStatusRequest,
    CloseAppRequest,
    EventsRequest,
    FeedRequest,
    InferRequest,
    JobStatusRequest,
    ListAppsRequest,
    ListJobsRequest,
    RefineRequest,
    RegisterAppRequest,
    Request,
    ServerInfoRequest,
    SetExampleEnabledRequest,
    SubmitTrainingRequest,
    to_wire,
)
from repro.service.gateway import ServiceGateway
from repro.service.stream import sse_frame

_PREFIX = f"/{API_VERSION}"

#: The selectable HTTP frontends.
FRONTENDS = ("threading", "asyncio")

#: Header-count cap for the asyncio codec (mirrors the stdlib
#: server's _MAXHEADERS guard against unbounded header streams).
_MAX_HEADERS = 100

#: Body-size cap for the asyncio codec: a declared Content-Length is
#: attacker-controlled and buffered before auth, so it must be
#: bounded.  64 MiB comfortably covers the largest legitimate feed
#: batch (the default example-store quota is 16 MiB per tenant).
_MAX_BODY_BYTES = 64 * 1024 * 1024


# ----------------------------------------------------------------------
# The shared transport-neutral router
# ----------------------------------------------------------------------
#: Operator endpoints served by the frontends themselves, before
#: routing and before auth (a scrape agent holds no tenant token):
#: Prometheus text and the JSON equivalent.  Both read the registry
#: lock-free (families snapshot their children per read).
METRICS_PATH = "/metrics"
METRICS_JSON_PATH = f"{_PREFIX}/metrics"

#: Kept traces from the tracer's ring buffer, slowest first.  Filters:
#: ``?tenant=`` / ``?route=`` / ``?min_ms=`` / ``?limit=``.  Gated by
#: the same ``--metrics-token`` as the metrics endpoints (traces leak
#: tenant names and request shapes).
TRACES_PATH = f"{_PREFIX}/traces"

#: Response header a read replica attaches to every reply: how many
#: journal records behind the writer the serving replica was at
#: dispatch time.  The SDK reads it (``EaseMLClient.last_replica_lag``)
#: to decide when to fall back to the writer.
REPLICA_LAG_HEADER = "X-Replica-Lag"


def route_template(method: str, path: str) -> str:
    """Collapse a request target onto its route template.

    Metric labels must be bounded: labelling by raw path would mint
    one time series per app name, job id, and typo'd URL.  Unknown
    paths all collapse into ``(unmatched)``.
    """
    url = urlparse(path)
    parts = [p for p in url.path.split("/") if p]
    if url.path == METRICS_PATH:
        return METRICS_PATH
    if not parts or parts[0] != API_VERSION:
        return "(unmatched)"
    rest = parts[1:]
    if rest == ["metrics"]:
        return METRICS_JSON_PATH
    if rest == ["traces"]:
        return TRACES_PATH
    if rest in (["info"], ["apps"], ["jobs"], ["events"]):
        return f"{_PREFIX}/{rest[0]}"
    if len(rest) == 2 and rest[0] == "apps":
        return f"{_PREFIX}/apps/{{app}}"
    if len(rest) == 2 and rest[0] == "jobs":
        return f"{_PREFIX}/jobs/{{job}}"
    if len(rest) == 3 and rest[0] == "apps" and rest[2] in (
        "examples", "infer"
    ):
        return f"{_PREFIX}/apps/{{app}}/{rest[2]}"
    if len(rest) == 4 and rest[0] == "apps" and rest[2] == "examples":
        return f"{_PREFIX}/apps/{{app}}/examples/{{id}}"
    return "(unmatched)"


def _register_http_metrics(gateway: ServiceGateway):
    """The per-route request metric families (shared by both frontends)."""
    registry = gateway.metrics
    return (
        registry.counter(
            "http_requests_total",
            "HTTP requests completed, by route and status.",
            ["frontend", "method", "route", "status"],
        ),
        registry.histogram(
            "http_request_seconds",
            "Wall-clock request latency at the HTTP frontend.",
            ["frontend", "route"],
        ),
        registry.counter(
            "http_errors_total",
            "HTTP requests that answered with an ApiError, by code.",
            ["frontend", "route", "code"],
        ),
    )


def metrics_endpoint(
    gateway: ServiceGateway,
    path: str,
    *,
    auth_header: str = "",
    metrics_token: Optional[str] = None,
) -> Optional[Tuple[int, bytes, str]]:
    """Serve the operator plane if ``path`` is one of its endpoints:
    ``GET /metrics``, ``GET /v1/metrics``, ``GET /v1/traces``.

    Returns ``(status, body, content_type)`` or ``None`` when the path
    is not an operator endpoint.  Exposition is read-only over
    snapshot copies, so both frontends serve it inline on the
    lock-free path.

    By default scrapes are unauthenticated (a scrape agent holds no
    tenant token), which exposes tenant names and per-tenant traffic
    patterns to any network peer.  ``metrics_token`` opts into gating:
    when set, scrapes must present ``Authorization: Bearer <token>``
    or they answer 401 (``--metrics-token`` on ``repro serve``).  The
    token gates traces too — a trace body names tenants and routes.
    """
    url = urlparse(path)
    bare = url.path
    if bare not in (METRICS_PATH, METRICS_JSON_PATH, TRACES_PATH):
        return None
    if metrics_token is not None and not hmac.compare_digest(
        bearer_token(auth_header), metrics_token
    ):
        error = ApiError(
            ApiErrorCode.UNAUTHORIZED,
            "metrics scrapes on this server require "
            "'Authorization: Bearer <metrics token>' "
            "(started with --metrics-token)",
        )
        body = json.dumps(
            {"api_version": API_VERSION, "error": error.to_dict()}
        ).encode("utf-8")
        return error.http_status, body, "application/json"
    if bare == TRACES_PATH:
        query = parse_qs(url.query)
        try:
            min_ms = float(query.get("min_ms", ["0"])[0] or 0.0)
            limit = int(query.get("limit", ["50"])[0] or 50)
        except ValueError:
            error = ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                "traces filters min_ms/limit must be numeric",
            )
            body = json.dumps(
                {"api_version": API_VERSION, "error": error.to_dict()}
            ).encode("utf-8")
            return error.http_status, body, "application/json"
        tracer = getattr(gateway, "tracer", NULL_TRACER)
        traces = tracer.snapshot(
            tenant=query.get("tenant", [None])[0],
            route=query.get("route", [None])[0],
            min_ms=min_ms,
            limit=limit,
        )
        body = json.dumps(
            {"api_version": API_VERSION, "traces": traces}
        ).encode("utf-8")
        return 200, body, "application/json"
    # SLO gauges are derived values; refresh them so the scrape reads
    # the attainment/burn of this instant, not of the last request.
    slo = getattr(gateway, "slo", None)
    if slo is not None:
        slo.export()
    if bare == METRICS_PATH:
        body = gateway.metrics.render_prometheus().encode("utf-8")
        return 200, body, "text/plain; version=0.0.4; charset=utf-8"
    body = json.dumps(
        {"api_version": API_VERSION, "metrics": gateway.metrics.to_dict()}
    ).encode("utf-8")
    return 200, body, "application/json"


def error_headers(exc: ApiError) -> Optional[Dict[str, str]]:
    """Transport headers an error carries: a rate-limited request
    (429, ``retry_after`` detail from the infer plane's token bucket)
    gets a standard ``Retry-After`` header so generic HTTP clients
    back off without parsing the JSON body."""
    retry_after = exc.details.get("retry_after")
    if retry_after is None:
        return None
    # Retry-After is delta-seconds; ceil so "0.2s" doesn't round to an
    # immediate (still-limited) retry.
    return {"Retry-After": str(max(1, math.ceil(float(retry_after))))}


def bearer_token(header: str) -> str:
    """Extract the token from an ``Authorization: Bearer …`` value."""
    if header.startswith("Bearer "):
        return header[len("Bearer "):].strip()
    return ""


def decode_body(raw: bytes) -> Dict[str, Any]:
    """Parse a request body; empty bytes mean an empty JSON object."""
    if not raw:
        return {}
    try:
        data = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        raise ApiError(
            ApiErrorCode.INVALID_ARGUMENT,
            "request body is not valid JSON",
        ) from None
    if not isinstance(data, dict):
        raise ApiError(
            ApiErrorCode.INVALID_ARGUMENT,
            "request body must be a JSON object",
        )
    return data


def route_request(
    method: str, path: str, body: Dict[str, Any], token: str
) -> Request:
    """Map one parsed HTTP exchange onto a typed gateway request.

    ``path`` is the raw request target (query string included);
    ``body`` the decoded JSON object (mutated: ``api_version`` is
    popped).  Raises :class:`ApiError` for unknown routes and
    malformed parameters — never anything untyped.
    """
    url = urlparse(path)
    parts = [p for p in url.path.split("/") if p]
    query = parse_qs(url.query)
    if not parts or parts[0] != API_VERSION:
        raise ApiError(
            ApiErrorCode.NOT_FOUND,
            f"unknown path {path!r}; routes live under "
            f"{_PREFIX}/ (see the API reference in the README)",
        )
    version = body.pop("api_version", API_VERSION)
    common = dict(auth_token=token, api_version=version)
    try:
        return _build_request(method, parts[1:], body, query, common, path)
    except ApiError:
        raise
    except (TypeError, ValueError, KeyError) as exc:
        raise ApiError(
            ApiErrorCode.INVALID_ARGUMENT,
            f"malformed request for {method} {path!r}: {exc}",
        ) from None


def _build_request(method, rest, body, query, common, path) -> Request:
    if rest == ["info"] and method == "GET":
        return ServerInfoRequest(**common)
    if rest == ["apps"]:
        if method == "POST":
            return RegisterAppRequest(
                app=body["app"], program=body["program"], **common
            )
        if method == "GET":
            return ListAppsRequest(**common)
    if len(rest) == 2 and rest[0] == "apps" and method == "GET":
        return AppStatusRequest(app=rest[1], **common)
    if len(rest) == 2 and rest[0] == "apps" and method == "DELETE":
        return CloseAppRequest(app=rest[1], **common)
    if len(rest) == 3 and rest[0] == "apps" and rest[2] == "examples":
        if method == "POST":
            return FeedRequest(
                app=rest[1],
                inputs=tuple(body.get("inputs", ())),
                outputs=tuple(body.get("outputs", ())),
                **common,
            )
        if method == "GET":
            return RefineRequest(app=rest[1], **common)
    if (
        len(rest) == 4
        and rest[0] == "apps"
        and rest[2] == "examples"
        and method == "POST"
    ):
        enabled = body["enabled"]
        if not isinstance(enabled, bool):
            # bool("false") is True — reject instead of guessing.
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"'enabled' must be a JSON boolean, got "
                f"{enabled!r}",
            )
        return SetExampleEnabledRequest(
            app=rest[1],
            example_id=int(rest[3]),
            enabled=enabled,
            **common,
        )
    if (
        len(rest) == 3
        and rest[0] == "apps"
        and rest[2] == "infer"
        and method == "POST"
    ):
        # Single-row ({"x": [...]}, the v1 shape) and batch
        # ({"rows": [[...], ...]}) share one route; the gateway
        # validates that exactly one is present.
        return InferRequest(
            app=rest[1],
            x=tuple(body.get("x", ())),
            rows=tuple(tuple(row) for row in body.get("rows", ())),
            **common,
        )
    if rest == ["jobs"]:
        if method == "POST":
            return SubmitTrainingRequest(
                app=body["app"],
                steps=int(body.get("steps", 1)),
                **common,
            )
        if method == "GET":
            app = query.get("app", [None])[0]
            return ListJobsRequest(app=app, **common)
    if len(rest) == 2 and rest[0] == "jobs" and method == "GET":
        # ``wait`` long-polls: the gateway holds the request until the
        # handle leaves PENDING/RUNNING or the wait expires.
        wait = float(query.get("wait", ["0"])[0] or 0.0)
        return JobStatusRequest(job_id=rest[1], wait=wait, **common)
    if rest == ["events"] and method == "GET":
        kinds = query.get("kinds", [None])[0]
        stream = query.get("stream", ["0"])[0]
        return EventsRequest(
            kinds=tuple(kinds.split(",")) if kinds else None,
            since=float(query.get("since", ["0"])[0]),
            stream=stream.lower() in ("1", "true", "yes"),
            **common,
        )
    raise ApiError(
        ApiErrorCode.NOT_FOUND,
        f"no route for {method} {path!r}; see the API "
        "reference table in the README",
    )


# ----------------------------------------------------------------------
# The threading frontend (stdlib ThreadingHTTPServer)
# ----------------------------------------------------------------------
class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the gateway for its handlers."""

    daemon_threads = True

    def __init__(
        self,
        address,
        gateway: ServiceGateway,
        *,
        access_log: Optional[AccessLogger] = None,
        metrics_token: Optional[str] = None,
        reuse_port: bool = False,
    ) -> None:
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise ValueError(
                "SO_REUSEPORT is not available on this platform"
            )
        # Bind deferred so the socket option lands before bind() —
        # SO_REUSEPORT lets N server processes share one listening
        # port (the kernel balances connections across them), which is
        # how the replica front tier stacks processes behind one
        # address.
        super().__init__(address, _Handler, bind_and_activate=False)
        if reuse_port:
            self.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
        try:
            self.server_bind()
            self.server_activate()
        except BaseException:
            self.socket.close()
            raise
        self.gateway = gateway
        self.access_log = access_log or NULL_ACCESS_LOG
        self.metrics_token = metrics_token
        self.tracer = getattr(gateway, "tracer", NULL_TRACER)
        #: Optional per-response header hook: a gateway (the replica
        #: facade) exposing ``extra_response_headers()`` gets its
        #: headers (e.g. ``X-Replica-Lag``) attached to every reply.
        self.extra_headers = getattr(
            gateway, "extra_response_headers", None
        )
        (
            self.m_requests,
            self.m_latency,
            self.m_errors,
        ) = _register_http_metrics(gateway)
        #: Set on shutdown so in-flight long-polls return promptly
        #: instead of parking until their deadline.
        self._closing = threading.Event()
        gateway.add_wait_abort(self._closing)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def shutdown(self) -> None:
        self._closing.set()  # wake parked long-polls first
        super().shutdown()

    def server_close(self) -> None:
        self._closing.set()
        self.gateway.remove_wait_abort(self._closing)
        self.gateway.shutdown_commands()
        super().server_close()


class _Handler(BaseHTTPRequestHandler):
    """Maps routes onto typed gateway requests."""

    protocol_version = "HTTP/1.1"
    #: Nagle + delayed-ACK stalls keep-alive round trips by ~40ms;
    #: responses are single small JSON writes, so push them at once.
    disable_nagle_algorithm = True

    # -- plumbing ------------------------------------------------------
    def log_request(self, code="-", size="-") -> None:
        # The stdlib per-request line is superseded by the structured
        # access line _dispatch emits (which carries the request id
        # and duration); suppress it so enabling the access log does
        # not double-report every exchange.
        pass

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # Formerly hard-silenced; now routed through the structured
        # access logger (stdlib calls land here for transport-level
        # errors, e.g. a malformed request line).  Still a no-op
        # unless the operator enabled --access-log / --log-json.
        self.server.access_log.event(
            "http_log",
            frontend="threading",
            client=self.address_string(),
            message=format % args,
        )

    log_error = log_message

    @property
    def gateway(self) -> ServiceGateway:
        return self.server.gateway

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        return decode_body(self.rfile.read(length))

    def _write(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._write_raw(status, body, "application/json", headers)

    def _write_raw(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        context = current_request()
        if context is not None:
            self.send_header(REQUEST_ID_HEADER, context.request_id)
        if self.server.extra_headers is not None:
            for name, value in self.server.extra_headers().items():
                self.send_header(name, value)
        if headers:
            for name, value in headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        context = bind_request(
            request_id=sanitize_client_id(
                self.headers.get(REQUEST_ID_HEADER)
            ),
            frontend="threading",
        )
        self.server.tracer.start(context)
        status = 500
        try:
            # Read the body before any routing decision — for EVERY
            # method, not just POST: an unread body (say a DELETE sent
            # with one) would desync this keep-alive connection (the
            # next request would be parsed out of the leftover bytes).
            with span("frontend.decode"):
                body = self._body()
            served = (
                metrics_endpoint(
                    self.gateway,
                    self.path,
                    auth_header=self.headers.get("Authorization", ""),
                    metrics_token=self.server.metrics_token,
                )
                if method == "GET"
                else None
            )
            if served is not None:
                status, raw, content_type = served
                self._write_raw(status, raw, content_type)
                return
            token = bearer_token(self.headers.get("Authorization", ""))
            request = route_request(method, self.path, body, token)
            response = self.gateway.handle(request)
            status = 200
            self._write(200, to_wire(response))
        except ApiError as exc:
            exc.request_id = exc.request_id or context.request_id
            status = exc.http_status
            self.server.m_errors.labels(
                "threading",
                route_template(method, self.path),
                exc.code.value,
            ).inc()
            self._write(
                status,
                {"api_version": API_VERSION, "error": exc.to_dict()},
                error_headers(exc),
            )
        except Exception as exc:  # noqa: BLE001 - transport boundary
            # The request stream may be in an unknown state; don't let
            # a keep-alive reuse parse leftover bytes as a request.
            self.close_connection = True
            error = ApiError(
                ApiErrorCode.INTERNAL,
                f"unexpected {type(exc).__name__} in the HTTP frontend",
                error_type=type(exc).__name__,
            )
            error.request_id = context.request_id
            status = error.http_status
            self.server.m_errors.labels(
                "threading",
                route_template(method, self.path),
                error.code.value,
            ).inc()
            self._write(
                status,
                {"api_version": API_VERSION, "error": error.to_dict()},
            )
        finally:
            duration = context.elapsed()
            route = route_template(method, self.path)
            self.server.m_requests.labels(
                "threading", method, route, status
            ).inc()
            self.server.m_latency.labels("threading", route).observe(
                duration
            )
            # After the latency observation (so the histogram can pick
            # up this trace as an exemplar), before the access line.
            self.server.tracer.finish(
                context,
                route=route,
                status=status,
                tenant=context.tenant,
                frontend="threading",
            )
            self.server.access_log.access(
                method=method,
                path=self.path,
                status=status,
                duration=duration,
                request_id=context.request_id,
                client=self.address_string(),
                frontend="threading",
                tenant=context.tenant or None,
                route=route,
            )
            clear_request()

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("DELETE")


# ----------------------------------------------------------------------
# The asyncio frontend (event loop + HTTP/1.1 codec)
# ----------------------------------------------------------------------
class AsyncServiceHTTPServer:
    """Event-loop HTTP frontend (``frontend="asyncio"``).

    One OS thread runs the asyncio loop; every connection is a
    coroutine speaking a minimal HTTP/1.1 with keep-alive.  Requests
    are dispatched by kind so the loop itself never blocks:

    * **reads** (``gateway.is_read``) run inline — the gateway serves
      them lock-free from immutable snapshots;
    * **job polls / long-polls** run on this server's worker pool
      (they may advance the simulated cluster or park on a handle's
      done event);
    * **mutations** go through the gateway's per-tenant command queue
      (:meth:`~repro.service.gateway.ServiceGateway.submit_command`),
      so one tenant's writes apply in submission order while the loop
      keeps serving everyone else's reads.

    The public surface mirrors ``ThreadingHTTPServer`` where the CLI
    and tests need it: :meth:`serve_forever`, :meth:`shutdown`,
    :meth:`server_close`, ``port``, ``url``.  The listening socket is
    bound in the constructor, so ``port`` is valid before the loop
    starts.
    """

    def __init__(
        self,
        address,
        gateway: ServiceGateway,
        *,
        access_log: Optional[AccessLogger] = None,
        metrics_token: Optional[str] = None,
        reuse_port: bool = False,
    ) -> None:
        self.gateway = gateway
        self.access_log = access_log or NULL_ACCESS_LOG
        self.metrics_token = metrics_token
        self.tracer = getattr(gateway, "tracer", NULL_TRACER)
        #: See ServiceHTTPServer.extra_headers: replica facades attach
        #: staleness headers (X-Replica-Lag) to every response.
        self.extra_headers = getattr(
            gateway, "extra_response_headers", None
        )
        (
            self.m_requests,
            self.m_latency,
            self.m_errors,
        ) = _register_http_metrics(gateway)
        self._socket = socket.create_server(
            address, reuse_port=reuse_port
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._aio_server: Optional[asyncio.base_events.Server] = None
        self._shutdown_future: Optional[asyncio.Future] = None
        self._conn_tasks: set = set()
        self._started = threading.Event()
        self._stopped = threading.Event()
        #: Interrupts gateway long-polls on shutdown (see
        #: ServiceGateway.add_wait_abort).
        self._closing = threading.Event()
        gateway.add_wait_abort(self._closing)
        #: Worker pools for job polls.  Private (not the loop's default
        #: executor) so shutdown never joins a thread that is still
        #: parked in a wait — and split in two so long-polls parked for
        #: up to MAX_WAIT_SECONDS cannot starve ordinary live-job
        #: polls of workers.
        self._pool = ThreadPoolExecutor(
            max_workers=16, thread_name_prefix="easeml-aio"
        )
        self._wait_pool = ThreadPoolExecutor(
            max_workers=16, thread_name_prefix="easeml-aio-wait"
        )

    # -- ThreadingHTTPServer-compatible surface ------------------------
    @property
    def port(self) -> int:
        return self._socket.getsockname()[1]

    @property
    def url(self) -> str:
        host = self._socket.getsockname()[0]
        return f"http://{host}:{self.port}"

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (blocking)."""
        try:
            asyncio.run(self._serve())
        finally:
            self._started.set()  # unblock a waiting serve_background
            self._stopped.set()

    def wait_started(self, timeout: float = 10.0) -> None:
        """Block until the loop is accepting connections."""
        if not self._started.wait(timeout):
            raise RuntimeError(
                "the asyncio frontend did not start within "
                f"{timeout}s; is another serve_forever running?"
            )
        if self._stopped.is_set() and not self._closing.is_set():
            raise RuntimeError(
                "the asyncio frontend exited before accepting "
                "connections (see the server thread's traceback)"
            )

    def shutdown(self) -> None:
        """Stop serving: wakes long-polls, closes connections, returns
        once the loop has exited (mirrors ``socketserver`` semantics)."""
        self._closing.set()
        loop = self._loop
        if loop is not None and not loop.is_closed():
            def _resolve() -> None:
                if (
                    self._shutdown_future is not None
                    and not self._shutdown_future.done()
                ):
                    self._shutdown_future.set_result(None)

            try:
                loop.call_soon_threadsafe(_resolve)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        if self._started.is_set():
            self._stopped.wait(timeout=30.0)

    def server_close(self) -> None:
        self._closing.set()
        self.gateway.remove_wait_abort(self._closing)
        self._pool.shutdown(wait=False)
        self._wait_pool.shutdown(wait=False)
        self.gateway.shutdown_commands()
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - already closed
            pass

    # -- the loop ------------------------------------------------------
    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_future = self._loop.create_future()
        self._aio_server = await asyncio.start_server(
            self._serve_connection, sock=self._socket
        )
        self._started.set()
        if self._closing.is_set():
            # shutdown() ran before the loop existed: honour it now
            # (socketserver's shutdown-before-serve_forever exits too).
            self._shutdown_future.set_result(None)
        try:
            await self._shutdown_future
        finally:
            self._aio_server.close()
            await self._aio_server.wait_closed()
            # In-flight handlers: cancel and collect.  Long-polls have
            # already been woken via the abort event, so tasks pinned
            # on executor futures resolve quickly.
            pending = [t for t in list(self._conn_tasks) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=10.0)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._connection_loop(reader, writer)
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
            asyncio.CancelledError,
            # StreamReader.readline signals an over-limit line (e.g. a
            # 64KiB+ request line) as a bare ValueError.
            ValueError,
        ):
            pass  # peer vanished / oversized / shutdown: just close
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _connection_loop(self, reader, writer) -> None:
        while not self._closing.is_set():
            head = await reader.readline()
            if not head:
                return  # clean keep-alive close from the peer
            # The request clock starts when the request line lands —
            # not when the connection went idle on keep-alive.
            decode_started = time.perf_counter()
            try:
                method, target, version = (
                    head.decode("latin-1").strip().split(" ", 2)
                )
            except ValueError:
                return  # not HTTP; drop the connection
            headers: Dict[str, str] = {}
            n_header_lines = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                n_header_lines += 1
                if n_header_lines > _MAX_HEADERS:
                    # Same guard the stdlib server applies: a single
                    # connection must not grow the header dict without
                    # bound.
                    error = ApiError(
                        ApiErrorCode.INVALID_ARGUMENT,
                        f"got more than {_MAX_HEADERS} headers",
                    )
                    await self._write_response(
                        writer, error.http_status,
                        {
                            "api_version": API_VERSION,
                            "error": error.to_dict(),
                        },
                        closing=True,
                    )
                    return
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            try:
                length = int(headers.get("content-length") or 0)
                if length < 0:
                    raise ValueError("negative Content-Length")
                if length > _MAX_BODY_BYTES:
                    raise ValueError("oversized Content-Length")
            except ValueError:
                # Malformed or abusive framing: answer 400 like every
                # other bad input, then close (the body can't be — or
                # must not be — buffered).
                error = ApiError(
                    ApiErrorCode.INVALID_ARGUMENT,
                    f"malformed Content-Length header (bodies are "
                    f"capped at {_MAX_BODY_BYTES} bytes)",
                )
                await self._write_response(
                    writer, error.http_status,
                    {"api_version": API_VERSION, "error": error.to_dict()},
                    closing=True,
                )
                return
            raw = await reader.readexactly(length) if length else b""
            decode_end = time.perf_counter()
            connection = headers.get("connection", "").lower()
            keep_alive = (
                connection != "close"
                and not (version == "HTTP/1.0" and connection != "keep-alive")
            )
            context = bind_request(
                RequestContext(
                    request_id=sanitize_client_id(
                        headers.get(REQUEST_ID_HEADER.lower())
                    )
                    or new_request_id(),
                    started=decode_started,
                    frontend="asyncio",
                )
            )
            self.tracer.start(context)
            add_span("frontend.decode", decode_started, decode_end)
            status, closing = 500, True  # until proven otherwise
            try:
                served = (
                    metrics_endpoint(
                        self.gateway,
                        target,
                        auth_header=headers.get("authorization", ""),
                        metrics_token=self.metrics_token,
                    )
                    if method == "GET"
                    else None
                )
                if _wants_stream(method, target):
                    # SSE subscription: the response never ends, so it
                    # bypasses the framed write below entirely and the
                    # connection dies with the stream.
                    status = await self._stream_events(
                        writer, headers, context
                    )
                    closing = True
                else:
                    if served is not None:
                        status, body_bytes, content_type = served
                        fatal = False
                        error_hdrs = None
                    else:
                        (
                            status,
                            payload,
                            fatal,
                            error_hdrs,
                        ) = await self._respond(
                            method, target, headers, raw, context
                        )
                        body_bytes = json.dumps(payload).encode("utf-8")
                        content_type = "application/json"
                    closing = fatal or not keep_alive
                    extra = (
                        dict(self.extra_headers())
                        if self.extra_headers is not None
                        else {}
                    )
                    if error_hdrs:
                        extra.update(error_hdrs)
                    await self._write_response(
                        writer,
                        status,
                        body_bytes,
                        closing=closing,
                        content_type=content_type,
                        request_id=context.request_id,
                        extra_headers=extra or None,
                    )
            finally:
                duration = context.elapsed()
                route = route_template(method, target)
                self.m_requests.labels(
                    "asyncio", method, route, status
                ).inc()
                self.m_latency.labels("asyncio", route).observe(duration)
                self.tracer.finish(
                    context,
                    route=route,
                    status=status,
                    tenant=context.tenant,
                    frontend="asyncio",
                )
                peer = writer.get_extra_info("peername")
                self.access_log.access(
                    method=method,
                    path=target,
                    status=status,
                    duration=duration,
                    request_id=context.request_id,
                    client=peer[0] if peer else "",
                    frontend="asyncio",
                    tenant=context.tenant or None,
                    route=route,
                )
                clear_request()
            if closing:
                return

    @staticmethod
    async def _write_response(
        writer,
        status,
        payload,
        *,
        closing,
        content_type: str = "application/json",
        request_id: Optional[str] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (
            payload
            if isinstance(payload, bytes)
            else json.dumps(payload).encode("utf-8")
        )
        reason = _HTTP_REASONS.get(status, "Unknown")
        rid_header = (
            f"{REQUEST_ID_HEADER}: {request_id}\r\n" if request_id else ""
        )
        more = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{rid_header}"
                f"{more}"
                f"Connection: {'close' if closing else 'keep-alive'}"
                "\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()

    async def _respond(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        raw: bytes,
        context: RequestContext,
    ) -> Tuple[int, Dict[str, Any], bool, Optional[Dict[str, str]]]:
        """One exchange -> (status, JSON payload, close-connection,
        extra response headers)."""
        try:
            body = decode_body(raw)
            token = bearer_token(headers.get("authorization", ""))
            request = route_request(method, target, body, token)
            response = await self._dispatch(request)
            return 200, to_wire(response), False, None
        except ApiError as exc:
            exc.request_id = exc.request_id or context.request_id
            self.m_errors.labels(
                "asyncio", route_template(method, target), exc.code.value
            ).inc()
            return (
                exc.http_status,
                {"api_version": API_VERSION, "error": exc.to_dict()},
                False,
                error_headers(exc),
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - transport boundary
            error = ApiError(
                ApiErrorCode.INTERNAL,
                f"unexpected {type(exc).__name__} in the HTTP frontend",
                error_type=type(exc).__name__,
            )
            error.request_id = context.request_id
            self.m_errors.labels(
                "asyncio", route_template(method, target), error.code.value
            ).inc()
            # The connection state is unknown; close after replying.
            return (
                error.http_status,
                {"api_version": API_VERSION, "error": error.to_dict()},
                True,
                None,
            )

    async def _dispatch(self, request: Request):
        gateway = self.gateway
        if gateway.is_read(request):
            # Lock-free snapshot read: safe (and fast) inline.
            return gateway.handle(request)
        if isinstance(request, (JobStatusRequest, InferRequest)):
            # May advance the shared cluster, park in a long-poll, or
            # (infer) park in a coalescing window — a worker thread
            # takes that hit, never the loop.  Both bypass the
            # per-tenant command queue on purpose: a parked wait must
            # not block the same tenant's mutations, and infer through
            # the FIFO queue would serialise the very requests the
            # batch queue wants concurrent.  Long-polls get their own
            # pool so parked waiters cannot starve plain polls/infers.
            pool = (
                self._wait_pool
                if (
                    isinstance(request, JobStatusRequest)
                    and float(request.wait or 0.0) > 0
                )
                else self._pool
            )
            # run_in_executor starts the callable in an EMPTY context;
            # snapshot this coroutine's context so the worker thread
            # sees the same request id (it lands in journal records).
            snapshot = contextvars.copy_context()
            return await asyncio.get_running_loop().run_in_executor(
                pool, lambda: snapshot.run(gateway.handle, request)
            )
        return await asyncio.wrap_future(gateway.submit_command(request))

    # -- server-sent events (GET /v1/events?stream=1) ------------------
    async def _stream_events(
        self, writer, headers: Dict[str, str], context: RequestContext
    ) -> int:
        """Serve one SSE subscription until the peer or server closes.

        Frames are ``id:``/``event:``/``data:`` per event (see
        :func:`repro.service.stream.sse_frame`), with a comment-line
        keep-alive every second of silence so dead peers are detected
        and proxies keep the connection warm.
        """
        gateway = self.gateway
        token = bearer_token(headers.get("authorization", ""))
        broker = getattr(gateway, "events_broker", None)
        try:
            if broker is None:
                raise ApiError(
                    ApiErrorCode.UNSUPPORTED,
                    "this server does not publish an event stream "
                    "(replicas serve snapshot reads only; subscribe "
                    "on the writer)",
                )
            tenant = gateway.authenticate_token(token)
        except ApiError as exc:
            exc.request_id = exc.request_id or context.request_id
            await self._write_response(
                writer,
                exc.http_status,
                {"api_version": API_VERSION, "error": exc.to_dict()},
                closing=True,
                request_id=context.request_id,
            )
            self.m_errors.labels(
                "asyncio", f"{_PREFIX}/events", exc.code.value
            ).inc()
            return exc.http_status
        context.tenant = tenant
        subscription = broker.subscribe(tenant)
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                f"{REQUEST_ID_HEADER}: {context.request_id}\r\n"
                "Connection: close\r\n"
                "\r\n"
                ": stream open\n\n"
            ).encode("latin-1")
        )
        loop = asyncio.get_running_loop()
        try:
            await writer.drain()
            while not self._closing.is_set():
                # The 1s tick doubles as the shutdown check and the
                # keep-alive beat; the blocking get runs on a worker
                # thread so the loop stays free.
                event = await loop.run_in_executor(
                    self._wait_pool, subscription.get, 1.0
                )
                if self._closing.is_set():
                    break
                if event is None:
                    writer.write(b": keep-alive\n\n")
                else:
                    writer.write(sse_frame(event))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer hung up: normal end of a stream
        except RuntimeError:
            # Executor already shut down: the server is closing; the
            # connection is torn down right after this returns.
            pass
        finally:
            subscription.close()
        return 200


def _wants_stream(method: str, target: str) -> bool:
    """Is this exchange asking for the SSE event stream?"""
    if method != "GET":
        return False
    url = urlparse(target)
    if url.path != f"{_PREFIX}/events":
        return False
    raw = parse_qs(url.query).get("stream", ["0"])[0]
    return raw.lower() in ("1", "true", "yes")


AnyServiceServer = Union[ServiceHTTPServer, AsyncServiceHTTPServer]


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def supports_reuse_port() -> bool:
    """Can this platform stack server processes on one port?"""
    return hasattr(socket, "SO_REUSEPORT")


def serve(
    gateway: ServiceGateway,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    frontend: str = "threading",
    access_log: Optional[AccessLogger] = None,
    metrics_token: Optional[str] = None,
    reuse_port: bool = False,
) -> AnyServiceServer:
    """Bind (but do not start) an HTTP server for ``gateway``.

    ``port=0`` picks a free port.  ``frontend`` selects the transport
    (see :data:`FRONTENDS`); both expose the same ``serve_forever`` /
    ``shutdown`` / ``server_close`` / ``port`` / ``url`` surface.
    ``access_log`` enables per-request structured logging (default:
    disabled).  ``metrics_token`` gates the otherwise-unauthenticated
    ``/metrics`` endpoints behind a bearer token (default: open).
    ``reuse_port`` binds with ``SO_REUSEPORT`` so multiple server
    processes (the replica front tier) can share one listening port.
    Call ``serve_forever()`` to block, or :func:`serve_background`
    to run it on a daemon thread.
    """
    if frontend not in FRONTENDS:
        raise ValueError(
            f"frontend must be one of {FRONTENDS}, got {frontend!r}"
        )
    if frontend == "asyncio":
        return AsyncServiceHTTPServer(
            (host, port), gateway,
            access_log=access_log, metrics_token=metrics_token,
            reuse_port=reuse_port,
        )
    return ServiceHTTPServer(
        (host, port), gateway,
        access_log=access_log, metrics_token=metrics_token,
        reuse_port=reuse_port,
    )


def serve_background(
    gateway: ServiceGateway,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    frontend: str = "threading",
    access_log: Optional[AccessLogger] = None,
    metrics_token: Optional[str] = None,
    reuse_port: bool = False,
) -> Tuple[AnyServiceServer, threading.Thread]:
    """Start the HTTP server on a daemon thread; returns (server, thread)."""
    server = serve(
        gateway, host, port, frontend=frontend,
        access_log=access_log, metrics_token=metrics_token,
        reuse_port=reuse_port,
    )
    thread = threading.Thread(
        target=server.serve_forever, name="easeml-http", daemon=True
    )
    thread.start()
    if isinstance(server, AsyncServiceHTTPServer):
        server.wait_started()
    return server, thread
