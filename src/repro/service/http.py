"""Stdlib HTTP frontend: the typed API over REST-ish JSON routes.

A thin transport over :class:`~repro.service.gateway.ServiceGateway`:
each route builds one typed request, dispatches it, and writes the
response's wire form.  Errors — including anything unexpected — come
back as a JSON ``{"error": {code, message, details}}`` body with the
matching HTTP status; a raw traceback never crosses the socket.

Routes (all under ``/v1``)::

    GET    /v1/info                           server metadata
    POST   /v1/apps                           register an app
    GET    /v1/apps                           list this tenant's apps
    GET    /v1/apps/{app}                     app status
    DELETE /v1/apps/{app}                     close (retire the tenant)
    POST   /v1/apps/{app}/examples            feed example pairs
    GET    /v1/apps/{app}/examples            refine view
    POST   /v1/apps/{app}/examples/{id}       toggle an example
    POST   /v1/apps/{app}/infer               predict
    POST   /v1/jobs                           submit async training
    GET    /v1/jobs[?app=NAME]                list job handles
    GET    /v1/jobs/{job_id}                  poll one handle
    GET    /v1/events[?kinds=a,b&since=T]     event-log slice

Authentication is ``Authorization: Bearer <token>``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.api import (
    API_VERSION,
    ApiError,
    ApiErrorCode,
    AppStatusRequest,
    CloseAppRequest,
    EventsRequest,
    FeedRequest,
    InferRequest,
    JobStatusRequest,
    ListAppsRequest,
    ListJobsRequest,
    RefineRequest,
    RegisterAppRequest,
    ServerInfoRequest,
    SetExampleEnabledRequest,
    SubmitTrainingRequest,
    to_wire,
)
from repro.service.gateway import ServiceGateway

_PREFIX = f"/{API_VERSION}"


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the gateway for its handlers."""

    daemon_threads = True

    def __init__(self, address, gateway: ServiceGateway) -> None:
        super().__init__(address, _Handler)
        self.gateway = gateway

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def serve(
    gateway: ServiceGateway,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ServiceHTTPServer:
    """Bind (but do not start) an HTTP server for ``gateway``.

    ``port=0`` picks a free port.  Call ``serve_forever()`` to block,
    or :func:`serve_background` to run it on a daemon thread.
    """
    return ServiceHTTPServer((host, port), gateway)


def serve_background(
    gateway: ServiceGateway,
    host: str = "127.0.0.1",
    port: int = 0,
) -> Tuple[ServiceHTTPServer, threading.Thread]:
    """Start the HTTP server on a daemon thread; returns (server, thread)."""
    server = serve(gateway, host, port)
    thread = threading.Thread(
        target=server.serve_forever, name="easeml-http", daemon=True
    )
    thread.start()
    return server, thread


class _Handler(BaseHTTPRequestHandler):
    """Maps routes onto typed gateway requests."""

    protocol_version = "HTTP/1.1"
    #: Nagle + delayed-ACK stalls keep-alive round trips by ~40ms;
    #: responses are single small JSON writes, so push them at once.
    disable_nagle_algorithm = True
    #: Silence per-request stderr logging (set True for debugging).
    verbose = False

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    @property
    def gateway(self) -> ServiceGateway:
        return self.server.gateway

    def _token(self) -> str:
        header = self.headers.get("Authorization", "")
        if header.startswith("Bearer "):
            return header[len("Bearer "):].strip()
        return ""

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                "request body is not valid JSON",
            ) from None
        if not isinstance(data, dict):
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                "request body must be a JSON object",
            )
        return data

    def _write(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _finish(self, request) -> None:
        response = self.gateway.handle(request)
        self._write(200, to_wire(response))

    def _dispatch(self, method: str) -> None:
        try:
            url = urlparse(self.path)
            parts = [p for p in url.path.split("/") if p]
            query = parse_qs(url.query)
            request = self._route(method, parts, query)
            self._finish(request)
        except ApiError as exc:
            self._write(
                exc.http_status,
                {"api_version": API_VERSION, "error": exc.to_dict()},
            )
        except Exception as exc:  # noqa: BLE001 - transport boundary
            # The request stream may be in an unknown state; don't let
            # a keep-alive reuse parse leftover bytes as a request.
            self.close_connection = True
            error = ApiError(
                ApiErrorCode.INTERNAL,
                f"unexpected {type(exc).__name__} in the HTTP frontend",
                error_type=type(exc).__name__,
            )
            self._write(
                error.http_status,
                {"api_version": API_VERSION, "error": error.to_dict()},
            )

    # -- routing -------------------------------------------------------
    def _route(self, method: str, parts, query):
        # Read the body before any routing decision: an unread body
        # would desync this keep-alive connection (the next request
        # would be parsed out of the leftover bytes).
        body = self._body() if method == "POST" else {}
        if not parts or parts[0] != API_VERSION:
            raise ApiError(
                ApiErrorCode.NOT_FOUND,
                f"unknown path {self.path!r}; routes live under "
                f"{_PREFIX}/ (see the API reference in the README)",
            )
        token = self._token()
        rest = parts[1:]
        version = body.pop("api_version", API_VERSION)
        common = dict(auth_token=token, api_version=version)

        route = (method, *rest)
        try:
            return self._build(route, body, query, common)
        except ApiError:
            raise
        except (TypeError, ValueError, KeyError) as exc:
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"malformed request for {method} {self.path!r}: {exc}",
            ) from None

    def _build(self, route, body, query, common):
        method, *rest = route
        if rest == ["info"] and method == "GET":
            return ServerInfoRequest(**common)
        if rest == ["apps"]:
            if method == "POST":
                return RegisterAppRequest(
                    app=body["app"], program=body["program"], **common
                )
            if method == "GET":
                return ListAppsRequest(**common)
        if len(rest) == 2 and rest[0] == "apps" and method == "GET":
            return AppStatusRequest(app=rest[1], **common)
        if len(rest) == 2 and rest[0] == "apps" and method == "DELETE":
            return CloseAppRequest(app=rest[1], **common)
        if len(rest) == 3 and rest[0] == "apps" and rest[2] == "examples":
            if method == "POST":
                return FeedRequest(
                    app=rest[1],
                    inputs=tuple(body.get("inputs", ())),
                    outputs=tuple(body.get("outputs", ())),
                    **common,
                )
            if method == "GET":
                return RefineRequest(app=rest[1], **common)
        if (
            len(rest) == 4
            and rest[0] == "apps"
            and rest[2] == "examples"
            and method == "POST"
        ):
            enabled = body["enabled"]
            if not isinstance(enabled, bool):
                # bool("false") is True — reject instead of guessing.
                raise ApiError(
                    ApiErrorCode.INVALID_ARGUMENT,
                    f"'enabled' must be a JSON boolean, got "
                    f"{enabled!r}",
                )
            return SetExampleEnabledRequest(
                app=rest[1],
                example_id=int(rest[3]),
                enabled=enabled,
                **common,
            )
        if (
            len(rest) == 3
            and rest[0] == "apps"
            and rest[2] == "infer"
            and method == "POST"
        ):
            # Single-row ({"x": [...]}, the v1 shape) and batch
            # ({"rows": [[...], ...]}) share one route; the gateway
            # validates that exactly one is present.
            return InferRequest(
                app=rest[1],
                x=tuple(body.get("x", ())),
                rows=tuple(tuple(row) for row in body.get("rows", ())),
                **common,
            )
        if rest == ["jobs"]:
            if method == "POST":
                return SubmitTrainingRequest(
                    app=body["app"],
                    steps=int(body.get("steps", 1)),
                    **common,
                )
            if method == "GET":
                app = query.get("app", [None])[0]
                return ListJobsRequest(app=app, **common)
        if len(rest) == 2 and rest[0] == "jobs" and method == "GET":
            return JobStatusRequest(job_id=rest[1], **common)
        if rest == ["events"] and method == "GET":
            kinds = query.get("kinds", [None])[0]
            return EventsRequest(
                kinds=tuple(kinds.split(",")) if kinds else None,
                since=float(query.get("since", ["0"])[0]),
                **common,
            )
        raise ApiError(
            ApiErrorCode.NOT_FOUND,
            f"no route for {method} {self.path!r}; see the API "
            "reference table in the README",
        )

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("DELETE")
