"""The versioned service API: typed requests, responses, and errors.

Everything that crosses the service boundary is declared here as a
frozen dataclass with an explicit schema version, so the gateway, the
HTTP frontend, and the client SDK all speak one vocabulary.  The wire
form is plain JSON: :func:`to_wire` tags an object with its type name,
:func:`from_wire` reconstructs it, and a round trip is the identity —
the HTTP layer adds nothing but transport.

Errors are part of the API, not an implementation detail.  Every
failure a caller can trigger maps to an :class:`ApiError` with a code
from :class:`ApiErrorCode`, a human-actionable message, and optional
structured details; raw ``KeyError``/``ValueError`` tracebacks never
cross the boundary.  (The error types themselves live in the
layer-neutral :mod:`repro.errors` so the platform can raise them; this
module is their canonical public home.)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Type

from repro.errors import (  # noqa: F401 - canonical re-export
    HTTP_STATUS,
    ApiError,
    ApiErrorCode,
    jsonify,
)

#: The one schema version this server generation speaks.
API_VERSION = "v1"


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True, kw_only=True)
class Request:
    """Base of every service request: version + tenant identity."""

    auth_token: str
    api_version: str = API_VERSION


@dataclass(frozen=True, kw_only=True)
class RegisterAppRequest(Request):
    """Declare a new app from DSL program text."""

    app: str
    program: str


@dataclass(frozen=True, kw_only=True)
class FeedRequest(Request):
    """Store input/output example pairs for an app.

    ``inputs`` is a list of flat (or nested) numeric lists; ``outputs``
    holds integer class labels or full output vectors.
    """

    app: str
    inputs: Tuple = ()
    outputs: Tuple = ()


@dataclass(frozen=True, kw_only=True)
class RefineRequest(Request):
    """List all fed examples and their enabled flags."""

    app: str


@dataclass(frozen=True, kw_only=True)
class SetExampleEnabledRequest(Request):
    """Toggle one stored example on/off (the ``refine`` action)."""

    app: str
    example_id: int
    enabled: bool


@dataclass(frozen=True, kw_only=True)
class InferRequest(Request):
    """Predict with the app's best model so far.

    Single-row (the v1 shape, still accepted): set ``x`` to one flat
    input.  Batch: set ``rows`` to a list of inputs instead and read
    per-row ``predictions`` off the response.  Exactly one of the two
    may be non-empty.
    """

    app: str
    x: Tuple = ()
    rows: Tuple = ()


@dataclass(frozen=True, kw_only=True)
class CloseAppRequest(Request):
    """Retire an app from the live cluster run (tenant departure).

    The app's tenant leaves the scheduler's active set (a
    ``USER_DEPARTED`` event): queued training jobs are cancelled,
    running jobs drain and still land, and the tenant's share of the
    pool is released.  The app keeps serving ``infer`` from its best
    model — closing stops training, not serving.
    """

    app: str


@dataclass(frozen=True, kw_only=True)
class SubmitTrainingRequest(Request):
    """Submit ``steps`` asynchronous training jobs for an app.

    Returns immediately with job handles; completions land out of
    order as the shared cluster schedules them.
    """

    app: str
    steps: int = 1


@dataclass(frozen=True, kw_only=True)
class JobStatusRequest(Request):
    """Poll one async job handle (advances the cluster as needed).

    ``wait`` turns the poll into a server-side long-poll: the gateway
    holds the request up to that many seconds (capped server-side)
    until the handle leaves PENDING/RUNNING, driving the shared
    cluster and riding other tenants' completions via the per-handle
    done event.  A wait that expires is *not* an error — the response
    carries the current, still-running status.  ``wait=0`` (the v1
    shape) answers immediately; servers predating long-poll ignore
    the field.
    """

    job_id: str
    wait: float = 0.0


@dataclass(frozen=True, kw_only=True)
class ListJobsRequest(Request):
    """List this tenant's jobs, optionally for one app."""

    app: Optional[str] = None


@dataclass(frozen=True, kw_only=True)
class AppStatusRequest(Request):
    """Best model, accuracy, and store stats for one app."""

    app: str


@dataclass(frozen=True, kw_only=True)
class ListAppsRequest(Request):
    """Names of this tenant's registered apps."""


@dataclass(frozen=True, kw_only=True)
class EventsRequest(Request):
    """Slice the server's event log (timeline introspection).

    Only events attributable to the requesting tenant's own apps are
    returned.  ``kinds`` filters by event-kind value strings;
    ``since`` drops events before that simulated time.

    ``stream`` asks for a live Server-Sent Events subscription instead
    of a snapshot (``GET /v1/events?stream=1``).  Streaming is a
    transport feature of the asyncio frontend; the typed handler
    answers ``UNSUPPORTED`` so other transports fail loudly.
    """

    kinds: Optional[Tuple[str, ...]] = None
    since: float = 0.0
    stream: bool = False


@dataclass(frozen=True, kw_only=True)
class ServerInfoRequest(Request):
    """Service metadata: version, cluster shape, clock, counts."""


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclass(frozen=True, kw_only=True)
class Response:
    """Base of every service response."""

    api_version: str = API_VERSION


#: Job lifecycle states a handle can report (mirrors JobState values,
#: plus the gateway-level ``cancelled`` — the owning app/tenant was
#: retired, or recovery marked the job lost).
JOB_STATES = (
    "pending", "running", "preempted", "finished", "failed", "cancelled",
)

#: Terminal handle states — polling past these is a no-op.
TERMINAL_JOB_STATES = ("finished", "failed", "cancelled")

#: What crash recovery did to a handle that was in flight when the
#: process died: ``"recovered"`` (re-queued on the rebuilt cluster) or
#: ``"lost"`` (marked cancelled under the mark-lost policy).  ``None``
#: for handles that were never at risk.  Advisory and session-local:
#: it describes *this* process's recovery action.
JOB_DISPOSITIONS = ("recovered", "lost")


@dataclass(frozen=True, kw_only=True)
class JobHandle:
    """An async training job as the API sees it."""

    job_id: str
    app: str
    candidate: str
    state: str
    submitted_at: float
    disposition: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_JOB_STATES


@dataclass(frozen=True, kw_only=True)
class RegisterAppResponse(Response):
    app: str
    workload_kind: str
    n_candidates: int


@dataclass(frozen=True, kw_only=True)
class FeedResponse(Response):
    app: str
    example_ids: Tuple[int, ...]
    n_total: int
    n_enabled: int


@dataclass(frozen=True, kw_only=True)
class RefineResponse(Response):
    app: str
    examples: Tuple[Tuple[int, bool], ...]


@dataclass(frozen=True, kw_only=True)
class SetExampleEnabledResponse(Response):
    app: str
    example_id: int
    enabled: bool


@dataclass(frozen=True, kw_only=True)
class InferResponse(Response):
    """Predictions, stamped with which training run produced them.

    ``model_version`` is the job handle id of the run that trained the
    served model (``run-<n>`` when the model landed outside the async
    job path), so clients can tell which run answered.  Single-row
    requests fill ``prediction`` (the v1 shape) *and* ``predictions``;
    batch requests fill only ``predictions``, one per input row.
    """

    app: str
    prediction: Optional[int] = None
    predictions: Tuple[int, ...] = ()
    model: Optional[str] = None
    model_version: Optional[str] = None


@dataclass(frozen=True, kw_only=True)
class CloseAppResponse(Response):
    """Outcome of a tenant departure."""

    app: str
    #: Job handle ids of queued jobs the departure cancelled.
    cancelled_jobs: Tuple[str, ...] = ()
    #: Whether the app was an active tenant of a live run when closed.
    was_admitted: bool = False


@dataclass(frozen=True, kw_only=True)
class SubmitTrainingResponse(Response):
    handles: Tuple[JobHandle, ...] = ()


@dataclass(frozen=True, kw_only=True)
class JobStatusResponse(Response):
    job_id: str
    app: str
    candidate: str
    state: str
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    accuracy: Optional[float] = None
    preemptions: int = 0
    improved: Optional[bool] = None
    disposition: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_JOB_STATES


@dataclass(frozen=True, kw_only=True)
class ListJobsResponse(Response):
    jobs: Tuple[JobHandle, ...] = ()


@dataclass(frozen=True, kw_only=True)
class AppStatusResponse(Response):
    app: str
    workload_kind: str
    n_examples: int
    n_enabled: int
    n_candidates: int
    training_runs: int
    best_accuracy: Optional[float] = None
    best_candidate: Optional[str] = None


@dataclass(frozen=True, kw_only=True)
class ListAppsResponse(Response):
    apps: Tuple[str, ...] = ()


@dataclass(frozen=True, kw_only=True)
class EventsResponse(Response):
    events: Tuple[Dict[str, Any], ...] = ()


@dataclass(frozen=True, kw_only=True)
class ServerInfoResponse(Response):
    placement: str
    n_gpus: int
    n_apps: int
    n_jobs: int
    clock: float
    training_started: bool


# ----------------------------------------------------------------------
# Wire form
# ----------------------------------------------------------------------
def _message_types() -> Dict[str, Type]:
    types: Dict[str, Type] = {}
    for obj in list(globals().values()):
        if (
            isinstance(obj, type)
            and dataclasses.is_dataclass(obj)
            and (issubclass(obj, (Request, Response)) or obj is JobHandle)
        ):
            types[obj.__name__] = obj
    return types


#: Registry of every wire-serialisable message type, by class name.
MESSAGE_TYPES: Dict[str, Type] = {}


def _tuplify(value: Any) -> Any:
    """Recursively turn JSON lists back into the API's tuples."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def _coerce(cls: Type, body: Dict[str, Any]) -> Any:
    """Build a dataclass from a wire dict, recursing into handles."""
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(body) - set(fields)
    if unknown:
        raise ApiError(
            ApiErrorCode.INVALID_ARGUMENT,
            f"{cls.__name__} does not accept field(s) "
            f"{sorted(unknown)}; valid fields: {sorted(fields)}",
            type=cls.__name__,
        )
    kwargs: Dict[str, Any] = {}
    for name, value in body.items():
        if name in ("handles", "jobs") and isinstance(value, list):
            value = tuple(
                _coerce(JobHandle, dict(v)) if isinstance(v, dict) else v
                for v in value
            )
        else:
            value = _tuplify(value)
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ApiError(
            ApiErrorCode.INVALID_ARGUMENT,
            f"cannot build {cls.__name__}: {exc}",
            type=cls.__name__,
        ) from None


def to_wire(message: Any) -> Dict[str, Any]:
    """``{"type": <class name>, "body": <json-safe fields>}``."""
    if not dataclasses.is_dataclass(message):
        raise TypeError(f"not an API message: {message!r}")
    return {
        "type": type(message).__name__,
        "body": jsonify(dataclasses.asdict(message)),
    }


def from_wire(data: Dict[str, Any]) -> Any:
    """Reconstruct a typed message from its :func:`to_wire` form."""
    try:
        type_name = data["type"]
        body = data.get("body", {})
    except (TypeError, KeyError):
        raise ApiError(
            ApiErrorCode.INVALID_ARGUMENT,
            "wire message must be a dict with 'type' and 'body' keys",
        ) from None
    cls = MESSAGE_TYPES.get(type_name)
    if cls is None:
        raise ApiError(
            ApiErrorCode.INVALID_ARGUMENT,
            f"unknown message type {type_name!r}; known types: "
            f"{sorted(MESSAGE_TYPES)}",
        )
    return _coerce(cls, dict(body))


MESSAGE_TYPES.update(_message_types())
