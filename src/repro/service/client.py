"""EaseMLClient: the Python SDK for the HTTP service.

The client speaks the same typed vocabulary as the gateway — every
method returns a response dataclass from :mod:`repro.service.api`, and
every service failure raises the original :class:`ApiError`
reconstructed from the wire (code, message, and details intact), so
in-process and over-the-socket callers handle errors identically.

Quickstart::

    client = EaseMLClient("http://127.0.0.1:8080", token)
    client.register_app("moons", "{input: {[Tensor[2]], []}, "
                                 "output: {[Tensor[2]], []}}")
    client.feed("moons", X.tolist(), [int(v) for v in y])
    handles = client.submit_training("moons", steps=4)
    for handle in handles:
        status = client.wait(handle.job_id)
        print(status.candidate, status.accuracy)
    print(client.infer("moons", X[0].tolist()).prediction)
"""

from __future__ import annotations

import json
import threading
import time
from http.client import HTTPConnection, HTTPException
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple
from urllib.parse import urlencode, urlparse

from repro.obs.context import REQUEST_ID_HEADER, new_request_id
from repro.service.http import REPLICA_LAG_HEADER
from repro.service.api import (
    API_VERSION,
    ApiError,
    ApiErrorCode,
    AppStatusResponse,
    CloseAppResponse,
    EventsResponse,
    FeedResponse,
    InferResponse,
    JobHandle,
    JobStatusResponse,
    ListAppsResponse,
    ListJobsResponse,
    RefineResponse,
    RegisterAppResponse,
    ServerInfoResponse,
    SetExampleEnabledResponse,
    SubmitTrainingResponse,
    from_wire,
)


class AmbiguousMutationError(ConnectionError):
    """A mutating request was sent but no response came back.

    The server may or may not have applied it; the client will not
    replay it automatically (that could apply it twice).  Callers that
    know the operation is safe to repeat can catch this and retry.
    """


class EaseMLClient:
    """HTTP client for the versioned multi-tenant service.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8080"``.
    token:
        The tenant auth token issued by the operator.
    timeout:
        Socket timeout in seconds for each request.
    """

    def __init__(
        self, base_url: str, token: str, *, timeout: float = 30.0
    ) -> None:
        parsed = urlparse(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(
                f"only http:// endpoints are supported, got {base_url!r}"
            )
        self.host = parsed.hostname or base_url
        self.port = parsed.port or 80
        self.token = token
        self.timeout = float(timeout)
        # One keep-alive connection, reused across requests (and
        # re-established transparently if the server closed it).  The
        # lock makes a shared client safe to use from threads, though
        # one client per thread parallelises better.
        self._connection: Optional[HTTPConnection] = None
        self._lock = threading.Lock()
        # Scale-out awareness: when the base URL points at a read
        # replica, mutations come back NOT_WRITER with the writer's
        # address in the error details.  The client learns it once and
        # routes subsequent mutations there directly (reads keep
        # hitting the replica); a dead learned writer is forgotten and
        # re-learned from the next redirect.
        self._writer: Optional[Tuple[str, int]] = None
        self._writer_connection: Optional[HTTPConnection] = None
        #: Records-behind-the-writer reported by the last response
        #: that carried an ``X-Replica-Lag`` header (None when the
        #: server is not a replica).
        self.last_replica_lag: Optional[int] = None

    def close(self) -> None:
        """Drop the persistent connections (reopened on next request)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None
            if self._writer_connection is not None:
                self._writer_connection.close()
                self._writer_connection = None

    @property
    def writer_url(self) -> Optional[str]:
        """The writer address learned from a replica redirect, if any."""
        if self._writer is None:
            return None
        host, port = self._writer
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        query: Optional[Dict[str, Any]] = None,
        _via_writer: bool = False,
    ) -> Any:
        if query:
            path = f"{path}?{urlencode(query)}"
        payload = None
        # Client-minted request id: the server adopts it (instead of
        # minting its own), echoes it back as X-Request-ID, stamps it
        # into journal records, and attaches it to error bodies — so
        # one id correlates this call end to end.
        request_id = new_request_id()
        headers = {
            "Authorization": f"Bearer {self.token}",
            REQUEST_ID_HEADER: request_id,
        }
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        idempotent = method == "GET"
        with self._lock:
            # Mutations go straight to a learned writer; reads keep
            # hitting the (possibly replica) base address unless this
            # call is an explicit writer-side retry.
            use_writer = self._writer is not None and (
                _via_writer or not idempotent
            )
            try:
                response, raw = self._exchange(
                    method,
                    path,
                    payload,
                    headers,
                    idempotent=idempotent,
                    writer=use_writer,
                )
            except AmbiguousMutationError:
                raise
            except (ConnectionError, HTTPException, OSError):
                if not use_writer:
                    raise
                # The learned writer went away (a promotion elects a
                # new one): forget it and fall back to the base
                # address, which will re-redirect us if needed.
                self._writer = None
                response, raw = self._exchange(
                    method,
                    path,
                    payload,
                    headers,
                    idempotent=idempotent,
                    writer=False,
                )
        lag = response.getheader(REPLICA_LAG_HEADER)
        if lag is not None:
            try:
                self.last_replica_lag = int(lag)
            except ValueError:  # pragma: no cover - malformed header
                pass
        echoed = response.getheader(REQUEST_ID_HEADER) or request_id
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            error = ApiError(
                ApiErrorCode.INTERNAL,
                f"server returned a non-JSON body (HTTP {response.status})",
            )
            error.request_id = echoed
            raise error from None
        if "error" in data:
            error = ApiError.from_dict(data["error"])
            # Older servers omit the id from the body; the header (or
            # our own minted id) still correlates the failure.
            error.request_id = error.request_id or echoed
            writer = (error.details or {}).get("writer_url")
            if (
                writer
                and not _via_writer
                and error.code
                in (ApiErrorCode.NOT_WRITER, ApiErrorCode.UNAVAILABLE_RECOVERING)
            ):
                # A replica told us where the writer lives: learn the
                # address and re-issue this one request there (the
                # guard keeps a confused cluster from bouncing us
                # around forever).
                self._learn_writer(writer)
                if self._writer is not None:
                    return self._request(
                        method, path, body=body, _via_writer=True
                    )
            raise error
        return from_wire(data)

    def _learn_writer(self, url: str) -> None:
        parsed = urlparse(url if "//" in url else f"//{url}")
        if not parsed.hostname or not parsed.port:
            return
        with self._lock:
            if self._writer != (parsed.hostname, parsed.port):
                self._writer = (parsed.hostname, parsed.port)
                if self._writer_connection is not None:
                    self._writer_connection.close()
                    self._writer_connection = None

    def _exchange(
        self, method, path, payload, headers, *, idempotent=False, writer=False
    ):
        """One HTTP exchange over a persistent connection.

        A stale keep-alive socket (server closed it between requests)
        surfaces as a connection error on the first attempt; reconnect
        and retry.  Idempotent reads get an extra attempt with a short
        grace sleep (a replica restart shows up as a reset mid-read);
        a mutation is never replayed once the request bytes may have
        reached the server — re-sending it could apply it twice.
        """
        attempts = 3 if idempotent else 2
        for attempt in range(attempts):
            reused = (
                self._writer_connection if writer else self._connection
            ) is not None
            if reused:
                conn = self._writer_connection if writer else self._connection
            else:
                host, port = self._writer if writer else (self.host, self.port)
                conn = HTTPConnection(host, port, timeout=self.timeout)
                if writer:
                    self._writer_connection = conn
                else:
                    self._connection = conn
            sent = False
            try:
                conn.request(method, path, body=payload, headers=headers)
                sent = True
                response = conn.getresponse()
                return response, response.read()
            except (ConnectionError, HTTPException, OSError) as exc:
                conn.close()
                if writer:
                    self._writer_connection = None
                else:
                    self._connection = None
                if sent and not idempotent and not reused:
                    # The request bytes left on a fresh connection and
                    # no response came back: the server may or may not
                    # have applied the mutation, so replaying it could
                    # apply it twice.  (A *reused* keep-alive socket
                    # dying before any response is the idle-close race
                    # — the server never read the request — so that
                    # case retries on a fresh connection.)
                    raise AmbiguousMutationError(
                        f"{method} {path} failed after the request was "
                        "sent; the server may or may not have applied "
                        f"it ({exc})"
                    ) from exc
                if attempt == attempts - 1:
                    raise
                if attempt:
                    time.sleep(0.05)
        raise AssertionError("unreachable")  # pragma: no cover

    def _get(self, path: str, **query: Any) -> Any:
        return self._request(
            "GET", path, query={k: v for k, v in query.items() if v is not None}
        )

    def _post(self, path: str, **body: Any) -> Any:
        body.setdefault("api_version", API_VERSION)
        return self._request("POST", path, body=body)

    # ------------------------------------------------------------------
    # The verbs
    # ------------------------------------------------------------------
    def info(self) -> ServerInfoResponse:
        """Service metadata (placement, pool size, clock, counts)."""
        return self._get(f"/{API_VERSION}/info")

    def register_app(self, app: str, program: str) -> RegisterAppResponse:
        """Declare a new app from DSL program text."""
        return self._post(f"/{API_VERSION}/apps", app=app, program=program)

    def list_apps(self) -> ListAppsResponse:
        """This tenant's registered app names."""
        return self._get(f"/{API_VERSION}/apps")

    def app_status(self, app: str) -> AppStatusResponse:
        """Best model, accuracy, and store stats for one app."""
        return self._get(f"/{API_VERSION}/apps/{app}")

    def close_app(self, app: str) -> CloseAppResponse:
        """Retire an app from the live run (tenant departure).

        Queued training jobs are cancelled (their handle ids come back
        in ``cancelled_jobs``), running jobs drain, and the app keeps
        serving ``infer`` from its best model.  Closing is permanent.
        """
        return self._request("DELETE", f"/{API_VERSION}/apps/{app}")

    def feed(
        self,
        app: str,
        inputs: Sequence[Sequence[float]],
        outputs: Sequence[Any],
    ) -> FeedResponse:
        """Store input/output example pairs."""
        return self._post(
            f"/{API_VERSION}/apps/{app}/examples",
            inputs=[list(x) for x in inputs],
            outputs=[
                list(y) if isinstance(y, (list, tuple)) else int(y)
                for y in outputs
            ],
        )

    def refine(self, app: str) -> RefineResponse:
        """All fed examples and their enabled flags."""
        return self._get(f"/{API_VERSION}/apps/{app}/examples")

    def set_example_enabled(
        self, app: str, example_id: int, enabled: bool
    ) -> SetExampleEnabledResponse:
        """Toggle one stored example on/off."""
        return self._post(
            f"/{API_VERSION}/apps/{app}/examples/{int(example_id)}",
            enabled=bool(enabled),
        )

    def infer(self, app: str, x: Sequence[float]) -> InferResponse:
        """Predict one row with the app's best model so far."""
        return self._post(f"/{API_VERSION}/apps/{app}/infer", x=list(x))

    def infer_batch(
        self, app: str, rows: Sequence[Sequence[float]]
    ) -> InferResponse:
        """Predict many rows in one request; read ``predictions``."""
        return self._post(
            f"/{API_VERSION}/apps/{app}/infer",
            rows=[list(row) for row in rows],
        )

    def submit_training(
        self, app: str, steps: int = 1
    ) -> Tuple[JobHandle, ...]:
        """Submit async training jobs; returns their handles."""
        response: SubmitTrainingResponse = self._post(
            f"/{API_VERSION}/jobs", app=app, steps=int(steps)
        )
        return response.handles

    def job_status(
        self, job_id: str, *, wait: Optional[float] = None
    ) -> JobStatusResponse:
        """Poll one job handle (advances the cluster when live).

        ``wait`` (seconds) long-polls: a server that supports it holds
        the request until the handle leaves PENDING/RUNNING or the
        window closes, and an expired wait is *not* an error — the
        response carries the current, still-running status.  The
        window is clamped safely below this client's socket timeout
        (a server legitimately holding the request must not look like
        a dead connection).  Servers predating long-poll ignore the
        parameter and answer at once.
        """
        query = {}
        if wait is not None and wait > 0:
            ceiling = max(self.timeout / 2, self.timeout - 5.0, 0.1)
            query["wait"] = round(min(float(wait), ceiling), 3)
        return self._get(f"/{API_VERSION}/jobs/{job_id}", **query)

    def list_jobs(self, app: Optional[str] = None) -> ListJobsResponse:
        """This tenant's job handles, optionally for one app."""
        return self._get(f"/{API_VERSION}/jobs", app=app)

    #: Longest single long-poll `wait` asks the server for; re-issued
    #: until the overall timeout (servers cap waits anyway).
    max_poll_wait = 10.0

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_interval: Optional[float] = None,
    ) -> JobStatusResponse:
        """Block until ``job_id`` reaches a terminal state.

        Uses server-side long-poll (``wait=`` on the job route): each
        request parks on the server until the handle leaves
        PENDING/RUNNING or the poll window closes, so completion costs
        one round trip instead of a busy-poll spin.  Against a server
        that predates long-poll the parameter is silently ignored and
        non-terminal statuses come straight back; the client detects
        that (the poll returned much faster than the window it asked
        for) and falls back to polling with exponential backoff, so an
        old server is never hammered in a tight loop.

        ``poll_interval`` pins the sleep between plain polls instead
        (the legacy pre-long-poll behaviour; 0 spins).
        """
        deadline = time.monotonic() + float(timeout)
        backoff = 0.0
        # The long-poll window must stay safely below the socket
        # timeout, or a server legitimately holding the request would
        # look like a dead connection.
        ceiling = min(self.max_poll_wait, max(self.timeout / 2, 0.1))
        while True:
            remaining = deadline - time.monotonic()
            window = min(max(remaining, 0.0), ceiling)
            start = time.monotonic()
            status = self.job_status(
                job_id,
                wait=None if poll_interval is not None else window,
            )
            if status.done:
                return status
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id!r} still {status.state!r} after "
                    f"{timeout}s"
                )
            if poll_interval is not None:
                if poll_interval > 0:
                    time.sleep(min(poll_interval, remaining))
                continue
            elapsed = time.monotonic() - start
            if elapsed < min(window, 1.0) / 2:
                # The server answered far sooner than the window we
                # asked it to hold: it ignored ``wait`` (a pre-long-
                # poll build).  Back off exponentially instead of
                # busy-polling it.
                backoff = min(max(2 * backoff, 0.02), 1.0)
                time.sleep(min(backoff, remaining))
            else:
                backoff = 0.0

    def wait_all(
        self, handles: Iterable[Any], *, timeout: float = 60.0
    ) -> Tuple[JobStatusResponse, ...]:
        """Wait for every handle (or handle id); returns final statuses."""
        return tuple(
            self.wait(
                h.job_id if isinstance(h, JobHandle) else str(h),
                timeout=timeout,
            )
            for h in handles
        )

    def events(
        self,
        kinds: Optional[Sequence[str]] = None,
        since: float = 0.0,
    ) -> EventsResponse:
        """Slice the server's event log."""
        return self._get(
            f"/{API_VERSION}/events",
            kinds=",".join(kinds) if kinds else None,
            since=since if since else None,
        )

    def stream_events(
        self, *, timeout: Optional[float] = None
    ) -> Iterable[Dict[str, Any]]:
        """Subscribe to live server-push events (SSE).

        Yields one dict per event — ``{"seq": ..., "event":
        "job_completed" | "model_promoted", ...}`` — until the server
        closes the stream, ``timeout`` seconds pass with no event
        (None = wait forever), or the caller abandons the generator.
        Requires the asyncio frontend; other transports answer
        ``UNSUPPORTED``, surfaced as an :class:`ApiError`.

        The subscription rides its own connection (the persistent
        keep-alive socket must stay request/response), so a streaming
        client can keep issuing ordinary calls concurrently.
        """
        conn = HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            conn.request(
                "GET",
                f"/{API_VERSION}/events?stream=1",
                headers={
                    "Authorization": f"Bearer {self.token}",
                    "Accept": "text/event-stream",
                },
            )
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    wire = json.loads(raw.decode("utf-8"))
                    raise ApiError.from_dict(wire["error"])
                except (ValueError, KeyError, UnicodeDecodeError):
                    raise ApiError(
                        ApiErrorCode.INTERNAL,
                        f"event stream refused with HTTP "
                        f"{response.status}",
                    ) from None
            data_lines: list = []
            while True:
                try:
                    line = response.fp.readline()
                except (TimeoutError, OSError):
                    return  # silence beyond timeout: end the stream
                if not line:
                    return  # server closed the stream
                text = line.decode("utf-8").rstrip("\r\n")
                if not text:
                    # Frame boundary: emit the accumulated event (the
                    # data payload already carries seq + event type).
                    if data_lines:
                        try:
                            event = json.loads("\n".join(data_lines))
                        except ValueError:
                            event = {"data": "\n".join(data_lines)}
                        if isinstance(event, dict):
                            yield event
                    data_lines = []
                    continue
                if text.startswith(":"):
                    continue  # keep-alive comment
                name, _, value = text.partition(":")
                if name == "data":
                    value = value[1:] if value.startswith(" ") else value
                    data_lines.append(value)
        finally:
            conn.close()
