"""The versioned multi-tenant service layer.

This package is the canonical way to talk to the platform: a typed
request/response API with a structured error model
(:mod:`repro.service.api`), a transport-agnostic gateway enforcing
tenancy and quotas over async job handles
(:mod:`repro.service.gateway`), two HTTP frontends — threading and
asyncio event-loop — behind one route table
(:mod:`repro.service.http`), and the Python SDK
(:mod:`repro.service.client`).

The error taxonomy itself is defined in the layer-neutral
:mod:`repro.errors` (the platform raises it too); this package is its
canonical public surface.
"""

from repro.service.api import (
    API_VERSION,
    ApiError,
    ApiErrorCode,
    JobHandle,
    Request,
    Response,
    from_wire,
    to_wire,
)
from repro.service.client import AmbiguousMutationError, EaseMLClient
from repro.service.gateway import (
    MAX_WAIT_SECONDS,
    ServiceGateway,
    Tenant,
    TenantQuota,
    TenantView,
)
from repro.service.http import (
    FRONTENDS,
    AsyncServiceHTTPServer,
    ServiceHTTPServer,
    serve,
    serve_background,
)

__all__ = [
    "API_VERSION",
    "ApiError",
    "ApiErrorCode",
    "JobHandle",
    "Request",
    "Response",
    "to_wire",
    "from_wire",
    "FRONTENDS",
    "MAX_WAIT_SECONDS",
    "ServiceGateway",
    "Tenant",
    "TenantQuota",
    "TenantView",
    "AsyncServiceHTTPServer",
    "ServiceHTTPServer",
    "serve",
    "serve_background",
    "AmbiguousMutationError",
    "EaseMLClient",
]
