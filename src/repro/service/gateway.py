"""The service gateway: validation, tenancy, quotas, async job handles.

:class:`ServiceGateway` is the transport-agnostic router every
frontend (the HTTP server, the Python SDK used in-process, tests)
dispatches through.  It owns:

* **tenant identity** — auth tokens map to named tenants; every app
  belongs to the tenant that registered it, and cross-tenant access
  reports ``NOT_FOUND`` (names are not leaked across tenants);
* **quotas** — per-tenant ceilings on registered apps, jobs in
  flight, and example-store bytes, enforced *before* state changes;
* **async training** — ``SubmitTrainingRequest`` returns job handles
  immediately; the jobs run on the PR-1 discrete-event
  :class:`~repro.runtime.kernel.ClusterRuntime` under the server's
  placement policy, so many tenants keep work in flight and
  completions land out of submission order.  Each
  ``JobStatusRequest`` poll of a live job advances the simulated
  cluster by one completion event, and every completion is absorbed
  into the scheduler exactly once (picker observation, Algorithm 2
  recurrence, step record) in completion order.

The backend is the existing :class:`~repro.platform.server.EaseMLServer`
with its event-driven runtime enabled; the gateway never exposes it
directly — everything in and out is a typed message from
:mod:`repro.service.api`, and every failure is an
:class:`~repro.service.api.ApiError`.

Request handling is split into two paths so an event-loop frontend
never parks on the scheduler lock:

* the **read path** (``_READ_REQUESTS``) takes no lock at all —
  handlers consume immutable :class:`TenantView` snapshots that
  writers republish before acking, plus GIL-atomic snapshots of
  append-only shared structures;
* the **write path** serialises on the gateway lock; frontends that
  must not block enqueue mutations through :meth:`ServiceGateway.
  submit_command`, a per-tenant FIFO command queue drained by worker
  threads.

``JobStatusRequest.wait`` long-polls server-side: the handler drives
the cluster toward the handle's completion and parks on the handle's
done event between advances, waking on completion, cancellation, or
frontend shutdown (:meth:`ServiceGateway.add_wait_abort`).

Durability visibility: a ``job_status`` poll always runs the group-
commit ack barrier before answering, so a reported terminal state is
covered by an fsync.  List-type reads (``list_jobs``, ``events``) are
advisory snapshot views — under ``sync="group"`` they may briefly show
a completion whose records a concurrent poll is still flushing; the
authoritative ack for a job is its ``job_status`` response.
"""

from __future__ import annotations

import contextvars
import secrets
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.events import EventKind
from repro.engine.jobs import Job, JobState
from repro.errors import jsonify
from repro.obs import (
    NULL_TRACER,
    PICK_LATENCY_BUCKETS,
    MetricsRegistry,
    SLOEngine,
    Tracer,
    add_span,
    current_request,
    current_request_id,
    run_in_context,
    span,
)
from repro.infer import InferPlane, InferPlaneConfig
from repro.platform.server import EaseMLApp, EaseMLServer
from repro.runtime.trace import event_to_dict
from repro.service.stream import EventBroker
from repro.service.api import (
    API_VERSION,
    ApiError,
    ApiErrorCode,
    AppStatusRequest,
    AppStatusResponse,
    CloseAppRequest,
    CloseAppResponse,
    EventsRequest,
    EventsResponse,
    FeedRequest,
    FeedResponse,
    InferRequest,
    InferResponse,
    JobHandle,
    JobStatusRequest,
    JobStatusResponse,
    ListAppsRequest,
    ListAppsResponse,
    ListJobsRequest,
    ListJobsResponse,
    RefineRequest,
    RefineResponse,
    RegisterAppRequest,
    RegisterAppResponse,
    Request,
    Response,
    ServerInfoRequest,
    ServerInfoResponse,
    SetExampleEnabledRequest,
    SetExampleEnabledResponse,
    SubmitTrainingRequest,
    SubmitTrainingResponse,
)

#: Job states that still count against the pending-jobs quota.
_LIVE_STATES = (JobState.PENDING, JobState.RUNNING, JobState.PREEMPTED)

#: Request types served on the lock-free read path: their handlers
#: consume only immutable :class:`TenantView` snapshots (published by
#: writers under the gateway lock) plus GIL-atomic snapshots of
#: append-only shared structures, so they never take a lock at all and
#: an asyncio event loop can run them inline.  Anything that mutates
#: shared state — registration, feeds, submits, closes, and the
#: runtime advance inside a live job poll — still runs under the
#: global lock (a live ``JobStatusRequest`` upgrades internally).
_READ_REQUESTS = (
    AppStatusRequest,
    EventsRequest,
    JobStatusRequest,
    ListAppsRequest,
    ListJobsRequest,
    RefineRequest,
    ServerInfoRequest,
)

#: Hard ceiling on one server-side long-poll (``JobStatusRequest.wait``);
#: clients re-issue the poll to wait longer.
MAX_WAIT_SECONDS = 30.0

#: Short metric-label names for request types ("RegisterAppRequest"
#: -> "register_app"), so dashboards read naturally.
_REQUEST_TYPE_NAMES = {
    AppStatusRequest: "app_status",
    CloseAppRequest: "close_app",
    EventsRequest: "events",
    FeedRequest: "feed",
    InferRequest: "infer",
    JobStatusRequest: "job_status",
    ListAppsRequest: "list_apps",
    ListJobsRequest: "list_jobs",
    RefineRequest: "refine",
    RegisterAppRequest: "register_app",
    ServerInfoRequest: "server_info",
    SetExampleEnabledRequest: "set_example_enabled",
    SubmitTrainingRequest: "submit_training",
}


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource ceilings the gateway enforces."""

    max_apps: int = 4
    max_pending_jobs: int = 8
    max_store_bytes: int = 16 * 1024 * 1024
    #: Inference admission (token bucket, counted in rows): None
    #: defers to the infer plane's default (unlimited out of the box).
    #: Journaled with the quota, so a restart keeps the limit.
    infer_rows_per_second: Optional[float] = None
    infer_burst_rows: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("max_apps", "max_pending_jobs", "max_store_bytes"):
            if int(getattr(self, name)) < 1:
                raise ValueError(f"{name} must be >= 1")
        if (
            self.infer_rows_per_second is not None
            and self.infer_rows_per_second <= 0
        ):
            raise ValueError("infer_rows_per_second must be positive")
        if (
            self.infer_burst_rows is not None
            and self.infer_burst_rows < 1
        ):
            raise ValueError("infer_burst_rows must be >= 1")


@dataclass(frozen=True)
class TenantView:
    """The immutable snapshot of tenant state the read path serves.

    Writers replace ``Tenant.view`` with a fresh instance (under the
    gateway lock, before the mutation acks) whenever membership or
    retirement changes; lock-free readers grab the view once and never
    touch the live ``Tenant`` lists, so a concurrent register or
    retire can never surface a half-updated tenant to a read.
    """

    name: str
    apps: Tuple[str, ...]
    retired: bool


@dataclass
class Tenant:
    """One authenticated principal and its resources."""

    name: str
    token: str
    quota: TenantQuota
    apps: List[str] = field(default_factory=list)
    #: Running example-store usage (updated on feed; stores are
    #: append-only, so this never needs recomputing).
    store_bytes: int = 0
    #: A retired tenant keeps its token for reads (job polls answer
    #: ``cancelled``, infer keeps serving) but every mutation fails
    #: with FAILED_PRECONDITION.
    retired: bool = False
    #: Immutable snapshot for the lock-free read path; republished by
    #: writers after every membership/retirement change.
    view: TenantView = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.republish()

    def republish(self) -> None:
        """Publish a fresh read-path snapshot (single reference swap)."""
        self.view = TenantView(self.name, tuple(self.apps), self.retired)


@dataclass
class _JobRecord:
    """Gateway-side bookkeeping for one async training job."""

    handle_id: str
    tenant: str
    app: str
    candidate: str
    job: Job
    tenant_state: Any  # core.multitenant.TenantState
    selection: Any  # core.model_picking.Selection
    #: Row in the app's TrainingOutcome history — assigned when the
    #: job completes (outcomes land in completion order).
    history_index: Optional[int] = None
    #: Cancelled at the gateway level: the owning app/tenant was
    #: retired while the job was queued, or recovery marked it lost.
    #: The API reports state ``"cancelled"`` (terminal) — never
    #: NOT_FOUND, even across a restart, because handles are journaled.
    cancelled: bool = False
    #: What crash recovery did to this handle (``"recovered"`` /
    #: ``"lost"``); session-local, never persisted.
    disposition: Optional[str] = None
    #: Set exactly when the handle reaches a terminal state
    #: (completion hook, gateway cancellation, recovery mark-lost);
    #: long-poll waiters (``JobStatusRequest.wait``) park on it
    #: instead of spinning when they cannot advance the cluster.
    done_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )


class ServiceGateway:
    """Typed request router over a runtime-backed :class:`EaseMLServer`.

    Parameters
    ----------
    server:
        An :class:`EaseMLServer` with ``runtime_placement`` set.  When
        omitted, one is built from the keyword arguments below.
    placement, n_gpus, scaling_efficiency, preemption_overhead, seed,
    min_examples:
        Backend shape used only when ``server`` is None.
    default_quota:
        Quota applied to tenants created without an explicit one.
    shard_read_locks:
        Serve read-only requests on the lock-free snapshot read path
        (see ``_READ_REQUESTS`` and :class:`TenantView`) instead of
        under the gateway-wide lock.  On by default; the switch exists
        so the throughput benchmark can race the two disciplines, and
        the name is historical — PR 3's per-tenant shard locks were
        this path's ancestor, and the config key is pinned by every
        existing durable state directory.
    metrics:
        The :class:`~repro.obs.MetricsRegistry` this gateway reports
        into (default: a fresh enabled registry).  Pass a disabled
        registry (``MetricsRegistry(enabled=False)``) to strip every
        instrument down to a no-op — the ``repro serve --no-metrics``
        escape hatch the overhead benchmark races.
    """

    def __init__(
        self,
        server: Optional[EaseMLServer] = None,
        *,
        placement: str = "partition",
        n_gpus: int = 8,
        scaling_efficiency: float = 0.9,
        preemption_overhead: float = 0.0,
        seed: int = 0,
        min_examples: int = 10,
        default_quota: Optional[TenantQuota] = None,
        shard_read_locks: bool = True,
        zoo=None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Any] = None,
        slo: Optional[SLOEngine] = None,
        infer_config: Optional[InferPlaneConfig] = None,
    ) -> None:
        server_provided = server is not None
        if server is None:
            server = EaseMLServer(
                zoo,
                runtime_placement=placement,
                n_gpus=n_gpus,
                scaling_efficiency=scaling_efficiency,
                preemption_overhead=preemption_overhead,
                min_examples=min_examples,
                seed=seed,
            )
        if server.runtime_placement is None:
            raise ValueError(
                "the gateway needs an event-driven backend; construct "
                "the server with runtime_placement set (e.g. 'partition')"
            )
        self.server = server
        self.default_quota = default_quota or TenantQuota()
        self.shard_read_locks = bool(shard_read_locks)
        # --- observability ------------------------------------------
        #: The metrics registry every layer below reports into (the
        #: HTTP frontends read it for GET /metrics; attach_store binds
        #: it to the journal; _ensure_app_scheduled to the scheduler).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: The span tracer the frontends start/finish traces through;
        #: deep layers (journal, scheduler) emit via the ambient
        #: context instead.  ``--no-metrics`` disables tracing too.
        self.tracer = tracer if tracer is not None else (
            Tracer() if self.metrics.enabled else NULL_TRACER
        )
        #: Per-tenant SLO scoring; every completed handle() records
        #: into it, and /metrics scrapes refresh its gauges.
        self.slo = slo if slo is not None else SLOEngine(
            registry=self.metrics
        )
        #: The inference data plane (repro.infer): vectorized predict,
        #: cross-request coalescing, prediction cache, admission.
        #: Reconfigure whole via :meth:`configure_infer_plane`.
        self.infer_plane = InferPlane(
            config=infer_config, metrics=self.metrics
        )
        #: Server-push notifications (SSE on the asyncio frontend):
        #: job completions and model promotions, the infer plane's
        #: companions.
        self.events_broker = EventBroker()
        m = self.metrics
        self._m_requests = m.counter(
            "gateway_requests_total",
            "Gateway requests handled, by tenant, type, and outcome.",
            ["tenant", "type", "outcome"],
        )
        self._m_request_seconds = m.histogram(
            "gateway_request_seconds",
            "Gateway handler latency, by request type.",
            ["type"],
        )
        self._m_queue_depth = m.gauge(
            "gateway_command_queue_depth",
            "Mutations waiting in the per-tenant command queues.",
        )
        self._m_command_wait = m.histogram(
            "gateway_command_wait_seconds",
            "Time a queued command waited before its drainer ran it.",
        )
        self._m_parks = m.counter(
            "gateway_longpoll_parks_total",
            "Long-poll waits that parked on a job's done event.",
        )
        self._m_wakes = m.counter(
            "gateway_longpoll_wakes_total",
            "Long-poll waits resolved, by reason.",
            ["reason"],
        )
        self._m_pick_seconds = m.histogram(
            "scheduler_pick_seconds",
            "Latency of one serving-path model pick "
            "(TenantState.picker.select).",
            buckets=PICK_LATENCY_BUCKETS,
        )
        self._m_picks = m.counter(
            "scheduler_picks_total",
            "Model picks made on the serving path, by tenant.",
            ["tenant"],
        )
        self._tenants: Dict[str, Tenant] = {}  # token -> tenant
        self._tenant_names: Dict[str, Tenant] = {}
        self._jobs: Dict[str, _JobRecord] = {}  # handle id -> record
        self._jobs_by_runtime_id: Dict[int, _JobRecord] = {}
        #: ``(app, history index) -> job handle id`` so infer can name
        #: the training run that produced the served model.
        self._handles_by_outcome: Dict[tuple, str] = {}
        self._lock = threading.RLock()
        self._absorb_hook_installed = False
        # --- serialized write path (per-tenant command queues) ------
        #: token -> FIFO of (request, future, context snapshot,
        #: enqueue time) awaiting execution; one drainer per tenant at
        #: a time, so a tenant's mutations apply in submission order
        #: while different tenants' commands run concurrently (and
        #: serialise only on the gateway lock).
        self._commands: Dict[str, Deque[Tuple[Request, Future, Any, float]]] = {}
        self._command_active: set = set()
        self._command_lock = threading.Lock()
        self._command_pool: Optional[ThreadPoolExecutor] = None
        #: Frontend shutdown events (see :meth:`add_wait_abort`): a set
        #: event makes every in-flight long-poll return its current
        #: status promptly instead of parking until its deadline.
        self._wait_aborts: List[threading.Event] = []
        # --- durable control plane (repro.persist) ------------------
        #: The attached StateStore (journal + snapshots), or None for
        #: an in-memory-only gateway.
        self._store: Any = None
        #: True while crash recovery replays the journal through this
        #: gateway: journaling is suppressed, side-effects are queued
        #: for verification, and handle() answers 503.
        self._replaying = False
        self._recovering = False
        #: Side-effect records (admissions, retirements, completions,
        #: cancellations) fired while a journaled operation executes;
        #: drained to the journal right after the operation's primary
        #: record, so replay sees them in emission order.
        self._pending_effects: List[Tuple[str, Dict[str, Any]]] = []
        self._op_depth = 0
        self._feed_ctx: Optional[str] = None  # tenant name mid-_feed
        #: Backend shape recovery needs to rebuild an identical
        #: gateway; None when wrapping an externally-built server
        #: (whose seed and zoo the gateway cannot know).
        self.persist_config: Optional[Dict[str, Any]] = (
            None
            if server_provided
            else {
                "placement": placement,
                "n_gpus": int(n_gpus),
                "scaling_efficiency": float(scaling_efficiency),
                "preemption_overhead": float(preemption_overhead),
                "seed": int(seed),
                "min_examples": int(min_examples),
                "default_quota": asdict(self.default_quota),
                "shard_read_locks": self.shard_read_locks,
                "zoo_names": None if zoo is None else list(zoo.names()),
            }
        )
        self.server.on_persist(self._on_server_persist_event)
        self.server.on_promotion(self._on_promotion)
        if self.server._runtime_oracle is not None:
            # Wrapping a server whose scheduler already started: hook
            # completions now, or job results would never be absorbed.
            self._install_absorb_hook()
        self._handlers = {
            RegisterAppRequest: self._register_app,
            FeedRequest: self._feed,
            RefineRequest: self._refine,
            SetExampleEnabledRequest: self._set_example_enabled,
            InferRequest: self._infer,
            SubmitTrainingRequest: self._submit_training,
            CloseAppRequest: self._close_app,
            JobStatusRequest: self._job_status,
            ListJobsRequest: self._list_jobs,
            AppStatusRequest: self._app_status,
            ListAppsRequest: self._list_apps,
            EventsRequest: self._events,
            ServerInfoRequest: self._server_info,
        }

    # ------------------------------------------------------------------
    # Durable control plane (write-ahead journal wiring)
    # ------------------------------------------------------------------
    def attach_store(self, store: Any) -> None:
        """Attach a :class:`~repro.persist.StateStore`.

        From this point every mutating operation is journaled before
        it is acked; with a store attached, mutations must flow
        through the gateway (direct feeds on the backing server are
        still captured via the server's persist hook, but direct
        ``server.run()`` / registration calls are not replayable).
        """
        with self._lock:
            if self._store is not None:
                raise ValueError("a state store is already attached")
            self._store = store
            bind = getattr(store, "bind_metrics", None)
            if bind is not None:
                bind(self.metrics)

    @property
    def store(self) -> Any:
        return self._store

    @contextmanager
    def _persisted_op(self):
        """Marks a journaled operation: side-effects buffer until the
        primary record is appended (see ``_pending_effects``)."""
        self._op_depth += 1
        try:
            yield
        finally:
            self._op_depth -= 1

    def _push_effect(self, rtype: str, payload: Dict[str, Any]) -> None:
        if self._store is None and not self._replaying:
            return
        self._pending_effects.append((rtype, jsonify(payload)))

    def _append_record(self, rtype: str, payload: Dict[str, Any]) -> None:
        self._store.append(rtype, payload)

    def _op_boundary(self) -> None:
        """Drain buffered effects; maybe snapshot.  Ends every op."""
        if self._replaying:
            return  # the recovery replayer consumes the buffer itself
        if self._store is None:
            self._pending_effects.clear()
            return
        for rtype, payload in self._pending_effects:
            self._append_record(rtype, payload)
        self._pending_effects.clear()
        if self._store.due_for_snapshot():
            from repro.persist.digest import state_digest

            self._store.snapshot(state_digest(self))

    @staticmethod
    def _stamp_request_id(payload: Dict[str, Any]) -> Dict[str, Any]:
        """Attach the ambient request id to a PRIMARY record payload.

        Only primary records may carry it: effect records
        (``EFFECT_TYPES``) are byte-compared against their replayed
        twins by recovery's ``_consume_effect``, and the replayed run
        has no request context — an extra key there would fail
        verification.  Primary replay reads named keys, so the extra
        key is inert on old and new journals alike.
        """
        request_id = current_request_id()
        if request_id is not None and "request_id" not in payload:
            payload = dict(payload)
            payload["request_id"] = request_id
        return payload

    def _persist(self, rtype: str, payload: Dict[str, Any]) -> None:
        """Journal one primary record, then its buffered effects."""
        if self._replaying or self._store is None:
            return
        self._append_record(rtype, self._stamp_request_id(jsonify(payload)))
        self._op_boundary()

    def _commit(self) -> None:
        """Durability barrier before an ack (group commit).

        Called outside the gateway lock once an operation's records
        are appended: under ``sync="group"`` the first caller in
        becomes the convoy leader and fsyncs once for every record
        flushed so far, and callers that flush covered ride it for
        free.  A no-op for the per-record ``fsync`` and ``buffered``
        modes, and when no store is attached.
        """
        store = self._store
        if store is not None and not self._replaying:
            store.commit()

    def _on_server_persist_event(self, kind: str, info: Dict[str, Any]) -> None:
        """Platform-server hook: feeds/admissions/retirements."""
        if self._store is None and not self._replaying:
            return
        if kind == "feed":
            if self._replaying:
                return  # replay verifies example ids via the response
            owner = self._feed_ctx or next(
                (
                    t.name
                    for t in self._tenant_names.values()
                    if info["app"] in t.apps
                ),
                None,
            )
            self._append_record(
                "examples_fed",
                self._stamp_request_id(
                    jsonify(
                        {
                            "app": info["app"],
                            "tenant": owner,
                            "via": "gateway" if self._feed_ctx else "server",
                            "inputs": info["inputs"],
                            "outputs": info["outputs"],
                            "example_ids": info["example_ids"],
                        }
                    )
                ),
            )
            return
        rtype = "app_admitted" if kind == "admit" else "app_retired"
        payload = {"app": info["app"], "user": info["user"]}
        if kind == "retire":
            payload["cancelled"] = info["cancelled"]
        if self._replaying or self._op_depth > 0:
            self._push_effect(rtype, payload)
        else:
            # Direct server-level admit/retire with a store attached:
            # journal it top-level so replay can re-apply it.
            self._append_record(rtype, jsonify(payload))
            self._op_boundary()

    def _on_absorbed(self, job: Job) -> None:
        """Oracle absorb hook: one completion fed to the scheduler."""
        if self._store is None and not self._replaying:
            return
        record = self._jobs_by_runtime_id.get(job.job_id)
        if record is None:  # pragma: no cover - non-gateway job
            return
        self._push_effect(
            "job_completed",
            {
                "handle": record.handle_id,
                "reward": job.reward,
                "at": self.server.clock.now,
            },
        )

    # ------------------------------------------------------------------
    # Tenant management (operator-side, not part of the request API)
    # ------------------------------------------------------------------
    def create_tenant(
        self,
        name: str,
        quota: Optional[TenantQuota] = None,
        *,
        apps: Optional[List[str]] = None,
        token: Optional[str] = None,
    ) -> str:
        """Register a tenant; returns its auth token.

        ``apps`` adopts apps already registered on the backing server
        (the pre-started-server path), making them this tenant's.
        ``token`` pins the auth token instead of generating one — used
        by crash recovery to re-issue the journaled token, since token
        generation is the one genuinely nondeterministic step.
        """
        with self._lock:
            if name in self._tenant_names:
                raise ValueError(f"tenant {name!r} already exists")
            if apps and self._store is not None:
                raise ValueError(
                    "create_tenant(apps=...) adopts server-side state "
                    "the journal never saw and cannot replay; with a "
                    "state store attached, register apps through the "
                    "gateway instead"
                )
            token = token or f"tok-{secrets.token_hex(12)}"
            tenant = Tenant(name, token, quota or self.default_quota)
            for app_name in apps or ():
                owner = next(
                    (
                        t.name
                        for t in self._tenants.values()
                        if app_name in t.apps
                    ),
                    None,
                )
                if owner is not None:
                    raise ValueError(
                        f"app {app_name!r} already belongs to tenant "
                        f"{owner!r}"
                    )
                app = self.server.get_app(app_name)  # NOT_FOUND if absent
                tenant.apps.append(app_name)
                tenant.store_bytes += sum(
                    e.x.nbytes + e.y.nbytes for e in app.store
                )
            tenant.republish()
            self._tenants[token] = tenant
            self._tenant_names[name] = tenant
            self._persist(
                "tenant_created",
                {"name": name, "token": token, "quota": asdict(tenant.quota)},
            )
        self._commit()
        return token

    def tenant_names(self) -> List[str]:
        with self._lock:
            return sorted(self._tenant_names)

    def tenant_token(self, name: str) -> str:
        """The current auth token for a tenant (operator-side)."""
        with self._lock:
            return self._require_tenant(name).token

    def _require_tenant(self, name: str) -> Tenant:
        tenant = self._tenant_names.get(name)
        if tenant is None:
            raise ValueError(
                f"no tenant named {name!r}; known tenants: "
                f"{sorted(self._tenant_names)}"
            )
        return tenant

    def rotate_token(self, name: str, *, token: Optional[str] = None) -> str:
        """Issue a fresh auth token for a tenant; the old one dies now.

        ``token`` pins the replacement (crash-recovery replay only).
        """
        with self._lock:
            tenant = self._require_tenant(name)
            new_token = token or f"tok-{secrets.token_hex(12)}"
            del self._tenants[tenant.token]
            tenant.token = new_token
            self._tenants[new_token] = tenant
            self._persist(
                "token_rotated", {"name": name, "token": new_token}
            )
        self._commit()
        return new_token

    def set_quota(self, name: str, quota: TenantQuota) -> None:
        """Replace a tenant's quota (takes effect on the next request)."""
        if not isinstance(quota, TenantQuota):
            raise TypeError(f"expected a TenantQuota, got {type(quota)}")
        with self._lock:
            tenant = self._require_tenant(name)
            tenant.quota = quota
            self._persist(
                "quota_changed", {"name": name, "quota": asdict(quota)}
            )
        self._commit()

    def retire_tenant(self, name: str) -> List[str]:
        """Retire a tenant: close its open apps, cancel queued jobs.

        The token keeps answering reads — in particular, a job poll
        that races the retirement gets a terminal ``cancelled`` status,
        never NOT_FOUND — but every further mutation fails with
        FAILED_PRECONDITION.  Returns the cancelled job handle ids.
        """
        with self._lock:
            tenant = self._require_tenant(name)
            if tenant.retired:
                raise ValueError(f"tenant {name!r} is already retired")
            cancelled: List[str] = []
            with self._persisted_op():
                for app_name in list(tenant.apps):
                    app = self.server.get_app(app_name)
                    if app.closed:
                        continue
                    for jid in self.server.retire_app(app_name):
                        record = self._jobs_by_runtime_id.get(jid)
                        if record is not None:
                            record.cancelled = True
                            record.done_event.set()  # wake long-polls
                            cancelled.append(record.handle_id)
            tenant.retired = True
            tenant.republish()
            cancelled.sort()
            if cancelled:
                self._push_effect("job_cancelled", {"handles": cancelled})
            self._persist("tenant_retired", {"name": name})
        self._commit()
        return cancelled

    # ------------------------------------------------------------------
    # The single entry point
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Validate, authenticate, dispatch; all failures are ApiError."""
        if not isinstance(request, Request):
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"expected a service Request, got {type(request).__name__}",
            )
        if self._recovering:
            raise ApiError(
                ApiErrorCode.UNAVAILABLE_RECOVERING,
                "the gateway is replaying its journal after a restart; "
                "retry shortly — handles survive recovery",
            )
        if request.api_version != API_VERSION:
            raise ApiError(
                ApiErrorCode.UNSUPPORTED_VERSION,
                f"this server speaks api_version {API_VERSION!r}, the "
                f"request declares {request.api_version!r}",
                supported=API_VERSION,
            )
        handler = self._handlers.get(type(request))
        if handler is None:
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"no handler for request type {type(request).__name__}",
            )
        # Token -> tenant is a single dict read (tenants are never
        # deleted), safe without the lock; the request then runs
        # lock-free when it is read-only (handlers consume immutable
        # TenantView / GIL-atomic snapshots), or under the gateway
        # lock when it can mutate shared state.  A live job poll
        # upgrades to the global lock internally.
        started = time.perf_counter()
        rtype = _REQUEST_TYPE_NAMES.get(
            type(request), type(request).__name__
        )
        try:
            tenant = self._authenticate(request)
        except ApiError as exc:
            self._m_requests.labels(
                "(unauthenticated)", rtype, exc.code.value
            ).inc()
            raise
        context = current_request()
        if context is not None and not context.tenant:
            # Traces and access-log lines read the tenant on the way
            # out; the auth token is the first place it is known.
            context.tenant = tenant.name
        # Job polls never take the outer lock in either discipline:
        # the handler is lock-free until it must advance the cluster
        # (then it takes the global lock itself), and a long-poll that
        # parked *holding* the global lock would stall every tenant
        # for up to MAX_WAIT_SECONDS.  Infer is the same shape: its
        # coalescing convoy parks request threads, so only the flush
        # inside _predict_batch may hold the lock — an infer running
        # under the outer lock would deadlock its own followers.
        lock_free = isinstance(
            request, (JobStatusRequest, InferRequest)
        ) or (
            self.shard_read_locks and isinstance(request, _READ_REQUESTS)
        )
        # Ack barrier: only paths that may have journaled pay it — a
        # pure snapshot read must never become the group-commit convoy
        # leader (it could be running inline on an event loop, and an
        # fsync there would stall every connection).  Job polls journal
        # job_completed records when they advance a live job, so they
        # commit unless classified as pure reads (terminal, no wait).
        needs_commit = not lock_free or (
            isinstance(request, JobStatusRequest)
            and not self.is_read(request)
        )
        outcome = "ok"
        slo_error = False
        try:
            with span("gateway.handle", type=rtype):
                if lock_free:
                    return self._dispatch(handler, tenant, request)
                with self._lock:
                    return self._dispatch(handler, tenant, request)
        except ApiError as exc:
            outcome = exc.code.value
            slo_error = exc.http_status >= 500
            raise
        except BaseException:
            # Anything else escaping _dispatch surfaces as a 500
            # INTERNAL at the frontend — count it that way too.
            outcome = "internal"
            slo_error = True
            raise
        finally:
            if needs_commit:
                # Outside the lock: under ``sync="group"`` concurrent
                # mutations convoy behind one fsync here (a no-op for
                # the other journal modes).
                self._commit()
            duration = time.perf_counter() - started
            self._m_requests.labels(tenant.name, rtype, outcome).inc()
            self._m_request_seconds.labels(rtype).observe(duration)
            # SLO scoring counts server faults as budget misses;
            # client errors (4xx) are the tenant's own doing.  Infer
            # additionally scores into its own route class so `repro
            # slo status` can show serving-path attainment separately.
            self.slo.record(
                tenant.name,
                duration,
                error=slo_error,
                route_class=(
                    "infer"
                    if isinstance(request, InferRequest)
                    else None
                ),
            )

    def _dispatch(self, handler, tenant: Tenant, request: Request) -> Response:
        try:
            return handler(tenant, request)
        except ApiError:
            raise
        except Exception as exc:  # noqa: BLE001 - boundary catch-all
            # Nothing below the gateway may leak a raw traceback
            # across the service boundary.
            raise ApiError(
                ApiErrorCode.INTERNAL,
                f"unexpected {type(exc).__name__} while handling "
                f"{type(request).__name__}: {exc}",
                error_type=type(exc).__name__,
            ) from exc
        finally:
            if self._pending_effects and not self._replaying:
                # A handler failed *after* side-effects (say, an
                # admission) already mutated shared state.  Those
                # mutations happened, so their records must land:
                # journal them top-level — replay re-applies
                # top-level effects — instead of letting them
                # desync the next operation's record group.
                with self._lock:
                    self._op_boundary()

    # ------------------------------------------------------------------
    # Frontend dispatch surface (read/write split, command queues)
    # ------------------------------------------------------------------
    def is_read(self, request: Request) -> bool:
        """Would ``handle(request)`` run on the lock-free read path?

        Frontends route on this: reads are served inline (an event
        loop never parks on the scheduler lock), everything else goes
        to a worker thread or :meth:`submit_command`.  A
        ``JobStatusRequest`` counts as a read only when the handle is
        already terminal and no long-poll was asked for — polling a
        live handle advances the shared cluster, and a ``wait`` may
        block for seconds.
        """
        if not self.shard_read_locks or not isinstance(
            request, _READ_REQUESTS
        ):
            return False
        if isinstance(request, JobStatusRequest):
            if float(request.wait or 0.0) > 0:
                return False
            if (
                self._store is not None
                and getattr(self._store, "sync", "") == "group"
            ):
                # Under group commit a terminal poll may be the first
                # to report a completion whose job_completed records
                # are not yet covered by a flush; it must run the ack
                # barrier, so it cannot be a pure read.
                return False
            record = self._jobs.get(request.job_id)
            return (
                record is None
                or record.cancelled
                or record.job.state not in _LIVE_STATES
            )
        return True

    def submit_command(self, request: Request) -> Future:
        """Enqueue a mutation on its tenant's serialized command queue.

        Commands with the same auth token run strictly FIFO (one
        drainer per tenant at a time), so a frontend that cannot block
        — the asyncio event loop — still applies each tenant's
        mutations in submission order.  Different tenants' commands
        run concurrently on the worker pool and serialise only on the
        gateway lock.  Returns a :class:`concurrent.futures.Future`
        resolving to the response (or raising the ``ApiError``).
        """
        future: Future = Future()
        key = request.auth_token
        # The drainer runs on a pool thread long after this frontend
        # call returned; snapshot the caller's context so the request
        # id survives the queue hop into handlers and journal records.
        entry = (
            request,
            future,
            contextvars.copy_context(),
            time.perf_counter(),
        )
        with self._command_lock:
            pool = self._command_pool
            if pool is None:
                pool = self._command_pool = ThreadPoolExecutor(
                    max_workers=8, thread_name_prefix="easeml-write"
                )
            self._commands.setdefault(key, deque()).append(entry)
            self._m_queue_depth.inc()
            if key not in self._command_active:
                self._command_active.add(key)
                pool.submit(self._drain_commands, key)
        return future

    def _drain_commands(self, key: str) -> None:
        """Worker: run one tenant's queued commands to exhaustion."""
        while True:
            with self._command_lock:
                queue = self._commands.get(key)
                if not queue:
                    self._command_active.discard(key)
                    self._commands.pop(key, None)
                    return
                request, future, snapshot, enqueued = queue.popleft()
                self._m_queue_depth.dec()
            dequeued = time.perf_counter()
            self._m_command_wait.observe(dequeued - enqueued)
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(
                    run_in_context(
                        snapshot,
                        self._run_command,
                        request,
                        enqueued,
                        dequeued,
                    )
                )
            except BaseException as exc:  # noqa: BLE001 - future boundary
                future.set_exception(exc)

    def _run_command(
        self, request: Request, enqueued: float, dequeued: float
    ) -> Response:
        """One dequeued command, inside the submitter's context
        snapshot — so the queue-wait span lands in the right trace."""
        add_span("queue.wait", enqueued, dequeued)
        return self.handle(request)

    def shutdown_commands(self) -> None:
        """Release the command-queue worker pool (frontend teardown).

        Queued commands still drain (their drainers are already
        running); the idle workers are released instead of lingering
        for the process lifetime.  A later :meth:`submit_command`
        lazily builds a fresh pool, so a gateway can be re-served.
        """
        with self._command_lock:
            pool, self._command_pool = self._command_pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def add_wait_abort(self, event: threading.Event) -> None:
        """Register a frontend shutdown event that interrupts long-polls.

        While ``event`` is set, every in-flight ``wait`` returns its
        current (possibly still-running) status promptly, so a server
        shutdown never hangs behind parked waiters.  Waiters capture
        the registered events when they start parking, so
        :meth:`remove_wait_abort` (after shutdown) cannot strand one.
        """
        self._wait_aborts.append(event)

    def remove_wait_abort(self, event: threading.Event) -> None:
        """Forget a frontend's shutdown event (idempotent)."""
        try:
            self._wait_aborts.remove(event)
        except ValueError:
            pass

    def _authenticate(self, request: Request) -> Tenant:
        tenant = self._tenants.get(request.auth_token)
        if tenant is None:
            raise ApiError(
                ApiErrorCode.UNAUTHORIZED,
                "unknown auth token; ask the operator for a tenant "
                "token (created via ServiceGateway.create_tenant)",
            )
        return tenant

    def authenticate_token(self, token: str) -> str:
        """Resolve an auth token to its tenant name (for transports
        that authenticate outside the typed request path, like the SSE
        event stream).  Raises ``UNAUTHORIZED`` like any request."""
        tenant = self._tenants.get(token)
        if tenant is None:
            raise ApiError(
                ApiErrorCode.UNAUTHORIZED,
                "unknown auth token; ask the operator for a tenant "
                "token (created via ServiceGateway.create_tenant)",
            )
        return tenant.name

    def _require_active(self, tenant: Tenant) -> None:
        if tenant.retired:
            raise ApiError(
                ApiErrorCode.FAILED_PRECONDITION,
                f"tenant {tenant.name!r} is retired; its apps keep "
                "serving infer and its job handles stay pollable, but "
                "no further mutations are accepted",
            )

    # ------------------------------------------------------------------
    # App lifecycle
    # ------------------------------------------------------------------
    def _register_app(
        self, tenant: Tenant, request: RegisterAppRequest
    ) -> RegisterAppResponse:
        self._require_active(tenant)
        name = request.app
        if not name or not isinstance(name, str):
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                "app name must be a non-empty string",
            )
        if len(tenant.apps) >= tenant.quota.max_apps:
            raise ApiError(
                ApiErrorCode.QUOTA_EXCEEDED,
                f"tenant {tenant.name!r} already has "
                f"{len(tenant.apps)} apps (quota: "
                f"{tenant.quota.max_apps}); delete is not supported, "
                "so raise the quota or reuse an existing app",
                limit=tenant.quota.max_apps,
            )
        if name in self.server.storage:
            raise ApiError(
                ApiErrorCode.CONFLICT,
                f"an app named {name!r} already exists; app names are "
                "global across tenants — pick another name",
                app=name,
            )
        try:
            app = self.server.register_app(request.program, name)
        except NotImplementedError as exc:
            raise ApiError(
                ApiErrorCode.UNSUPPORTED, str(exc), app=name
            ) from None
        except ValueError as exc:
            raise ApiError(
                ApiErrorCode.INVALID_PROGRAM,
                f"cannot parse DSL program for app {name!r}: {exc}",
                app=name,
            ) from None
        tenant.apps.append(name)
        tenant.republish()
        self._persist(
            "app_registered",
            {"tenant": tenant.name, "app": name, "program": request.program},
        )
        return RegisterAppResponse(
            app=name,
            workload_kind=app.template.kind.value,
            n_candidates=len(app.live_candidates),
        )

    def _get_app(self, tenant: Tenant, name: str) -> EaseMLApp:
        # Membership is checked against the immutable view so the
        # lock-free read path never observes a half-appended app list;
        # writers republish the view (under the lock) before acking.
        apps = tenant.view.apps
        if name not in apps:
            raise ApiError(
                ApiErrorCode.NOT_FOUND,
                f"tenant {tenant.name!r} has no app named {name!r}; "
                f"its apps are {sorted(apps)}",
                app=name,
            )
        return self.server.get_app(name)

    def _feed(self, tenant: Tenant, request: FeedRequest) -> FeedResponse:
        self._require_active(tenant)
        app = self._get_app(tenant, request.app)
        if len(request.inputs) != len(request.outputs):
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"got {len(request.inputs)} inputs but "
                f"{len(request.outputs)} outputs",
            )
        if not request.inputs:
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                "feed requires at least one example pair",
            )
        # Quota check before any state changes: stored examples are
        # float64 rows of declared input+output size.
        incoming = (
            len(request.inputs)
            * (app.program.input.flat_size + app.program.output.flat_size)
            * 8
        )
        used = tenant.store_bytes
        if used + incoming > tenant.quota.max_store_bytes:
            raise ApiError(
                ApiErrorCode.QUOTA_EXCEEDED,
                f"feeding {incoming} bytes would exceed tenant "
                f"{tenant.name!r}'s example-store quota "
                f"({used} of {tenant.quota.max_store_bytes} bytes used); "
                "disable and re-feed smaller batches or raise the quota",
                used=used,
                incoming=incoming,
                limit=tenant.quota.max_store_bytes,
            )
        try:
            inputs = [np.asarray(x, dtype=float) for x in request.inputs]
            outputs = [
                int(y) if np.isscalar(y) or isinstance(y, (int, float))
                else np.asarray(y, dtype=float)
                for y in request.outputs
            ]
            # The server's feed hook journals the examples_fed record
            # mid-call; the context names the owning tenant for it.
            self._feed_ctx = tenant.name
            try:
                ids = app.feed(inputs, outputs)
            finally:
                self._feed_ctx = None
        except (ValueError, TypeError) as exc:
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"cannot feed app {request.app!r}: {exc}",
                app=request.app,
            ) from None
        tenant.store_bytes += incoming
        self._op_boundary()
        return FeedResponse(
            app=request.app,
            example_ids=tuple(ids),
            n_total=len(app.store),
            n_enabled=app.store.n_enabled,
        )

    def _refine(
        self, tenant: Tenant, request: RefineRequest
    ) -> RefineResponse:
        app = self._get_app(tenant, request.app)
        # Read the store view directly rather than via app.refine():
        # the platform helper also appends a REFINE event to the
        # shared log, and the lock-free read path must be side-effect
        # free (an unlocked append racing a clock advance would trip
        # the log's monotonicity check).  The store is append-only, so
        # iterating it without a lock is a consistent snapshot.
        return RefineResponse(
            app=request.app,
            examples=tuple(
                (e.example_id, e.enabled) for e in app.store
            ),
        )

    def _set_example_enabled(
        self, tenant: Tenant, request: SetExampleEnabledRequest
    ) -> SetExampleEnabledResponse:
        self._require_active(tenant)
        app = self._get_app(tenant, request.app)
        app.set_example_enabled(int(request.example_id), request.enabled)
        self._persist(
            "example_toggled",
            {
                "tenant": tenant.name,
                "app": request.app,
                "example_id": int(request.example_id),
                "enabled": bool(request.enabled),
            },
        )
        return SetExampleEnabledResponse(
            app=request.app,
            example_id=int(request.example_id),
            enabled=bool(request.enabled),
        )

    def _infer(self, tenant: Tenant, request: InferRequest) -> InferResponse:
        # Runs on the lock-free path (like job polls): validation, the
        # cache, admission, and the coalescing window all happen
        # outside the gateway lock; only the flush itself — one
        # vectorized predict + one INFER event — takes it, inside
        # _predict_batch.  Running infer *under* the outer lock would
        # deadlock the convoy (a parked follower would hold the lock
        # its leader needs).
        app = self._get_app(tenant, request.app)
        batch = bool(request.rows)
        if batch and request.x:
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                "provide either 'x' (one row, the v1 shape) or 'rows' "
                "(a batch), not both",
            )
        rows = request.rows if batch else (request.x,)
        X = self._rows_to_matrix(rows, app, request.app)
        self.infer_plane.admit(
            tenant.name,
            (
                tenant.quota.infer_rows_per_second,
                tenant.quota.infer_burst_rows,
            ),
            len(X),
        )
        try:
            prediction_rows, meta, _cached = self.infer_plane.predict(
                request.app,
                X,
                lambda X_flush: self._predict_batch(app, X_flush),
                peek=lambda: (app.best_candidate, self._model_version(app)),
                objective_ms=self.slo.objective_for(
                    tenant.name
                ).latency_ms,
            )
        except RuntimeError as exc:
            raise ApiError(
                ApiErrorCode.FAILED_PRECONDITION,
                f"{exc}; submit training and poll the job handle first",
                app=request.app,
            ) from None
        predictions = tuple(int(p) for p in prediction_rows)
        return InferResponse(
            app=request.app,
            prediction=None if batch else predictions[0],
            predictions=predictions,
            model=meta.get("model"),
            model_version=meta.get("model_version"),
        )

    def _rows_to_matrix(
        self, rows, app: EaseMLApp, app_name: str
    ) -> np.ndarray:
        """Validate a batch of input rows into one ``(B, n)`` matrix.

        The fast path vectorizes the whole conversion; the fallback
        reproduces the v1 loop's per-row diagnostics for ragged or
        non-numeric input.  Non-finite rows are rejected here — NaN
        would poison both the estimator and the cache key.
        """
        flat_size = app.program.input.flat_size
        X: Optional[np.ndarray] = None
        try:
            X = np.asarray(rows, dtype=float)
        except (ValueError, TypeError):
            X = None  # ragged or non-numeric: diagnose per row below
        if (
            X is not None
            and len(rows) > 0
            and X.size == len(rows) * flat_size
        ):
            X = X.reshape(len(rows), flat_size)
        else:
            arrays = []
            for i, row in enumerate(rows):
                try:
                    x = np.asarray(row, dtype=float)
                except (ValueError, TypeError) as exc:
                    raise ApiError(
                        ApiErrorCode.INVALID_ARGUMENT,
                        f"infer input row {i} is not numeric: {exc}",
                        row=i,
                    ) from None
                if x.size != flat_size:
                    raise ApiError(
                        ApiErrorCode.INVALID_ARGUMENT,
                        f"infer input row {i} has {x.size} scalars, app "
                        f"{app_name!r} declares {flat_size}",
                        expected=flat_size,
                        got=int(x.size),
                        row=i,
                    )
                arrays.append(x.ravel())
            X = (
                np.stack(arrays)
                if arrays
                else np.empty((0, flat_size), dtype=float)
            )
        if X.size:
            finite = np.isfinite(X).all(axis=1)
            if not finite.all():
                i = int(np.flatnonzero(~finite)[0])
                raise ApiError(
                    ApiErrorCode.INVALID_ARGUMENT,
                    f"infer input row {i} contains non-finite values "
                    "(NaN or inf); the model and the prediction cache "
                    "require finite features",
                    row=i,
                )
        return X

    def _predict_batch(
        self, app: EaseMLApp, X: np.ndarray
    ) -> Tuple[np.ndarray, Dict[str, Any]]:
        """One coalesced flush: a single vectorized predict + ONE
        INFER event, under the gateway lock.

        The lock makes the (model, version) pair coherent for the
        whole flush and serialises the event-log append (the log
        refuses out-of-order timestamps).
        """
        with self._lock:
            predictions = app.infer_rows(X)
            return predictions, {
                "model": app.best_candidate,
                "model_version": self._model_version(app),
            }

    def _model_version(self, app) -> Optional[str]:
        """The job handle (or run number) that trained the served model."""
        if app.best_version is None:
            return None
        return self._handles_by_outcome.get(
            (app.name, app.best_version - 1),
            f"run-{app.best_version:05d}",
        )

    def _close_app(
        self, tenant: Tenant, request: CloseAppRequest
    ) -> CloseAppResponse:
        self._require_active(tenant)
        app = self._get_app(tenant, request.app)
        if app.closed:
            raise ApiError(
                ApiErrorCode.CONFLICT,
                f"app {request.app!r} is already closed",
                app=request.app,
            )
        was_admitted = self.server.is_admitted(request.app)
        try:
            with self._persisted_op():
                cancelled_ids = self.server.retire_app(request.app)
        except RuntimeError as exc:  # pragma: no cover - defensive
            raise ApiError(
                ApiErrorCode.FAILED_PRECONDITION,
                f"cannot close app {request.app!r}: {exc}",
                app=request.app,
            ) from None
        records = [
            record
            for jid in cancelled_ids
            for record in [self._jobs_by_runtime_id.get(jid)]
            if record is not None
        ]
        for record in records:
            record.cancelled = True
            record.done_event.set()  # wake long-polls on these handles
        cancelled = tuple(sorted(r.handle_id for r in records))
        if cancelled:
            self._push_effect("job_cancelled", {"handles": list(cancelled)})
        self._persist(
            "app_closed", {"tenant": tenant.name, "app": request.app}
        )
        return CloseAppResponse(
            app=request.app,
            cancelled_jobs=cancelled,
            was_admitted=was_admitted,
        )

    # ------------------------------------------------------------------
    # Async training
    # ------------------------------------------------------------------
    def _install_absorb_hook(self) -> None:
        if not self._absorb_hook_installed:
            runtime = self.server._runtime_oracle.runtime
            runtime.on_completion(self._on_job_completed)
            self.server._runtime_oracle.on_absorb(self._on_absorbed)
            # The event kernel under the oracle reports its queue
            # depth and event counts into this gateway's registry.
            bind = getattr(runtime, "bind_metrics", None)
            if bind is not None:
                bind(self.metrics)
            self._absorb_hook_installed = True

    def _require_enough_examples(self, app) -> None:
        if app.store.n_enabled < self.server.min_examples:
            raise ApiError(
                ApiErrorCode.FAILED_PRECONDITION,
                f"cannot train app {app.name!r}: it has "
                f"{app.store.n_enabled} enabled examples and at least "
                f"{self.server.min_examples} are required — feed more "
                "first",
                app=app.name,
                min_examples=self.server.min_examples,
            )

    def _ensure_app_scheduled(self, tenant: Tenant, app) -> None:
        """Start the cluster run and/or admit this app to it.

        Membership is dynamic: the first submit starts scheduling over
        every app that is already fed past the threshold, and any app
        fed later — registered before or after that first submit —
        joins the live run as a ``USER_ARRIVED`` tenant at its own
        first submit.  No tenant is ever blocked on another tenant's
        unfed app.
        """
        if app.closed:
            raise ApiError(
                ApiErrorCode.FAILED_PRECONDITION,
                f"app {app.name!r} is closed; closing is permanent — "
                "register a new app to keep training",
                app=app.name,
            )
        self._require_enough_examples(app)
        if self.server.scheduler is None:
            try:
                self.server._prepare(only_ready=True)
            except RuntimeError as exc:
                raise ApiError(
                    ApiErrorCode.FAILED_PRECONDITION,
                    f"cannot start training: {exc}",
                ) from None
            # The simulation-side scheduler (MultiTenantScheduler.step)
            # reports its own pick latency/counts into this registry.
            bind = getattr(self.server.scheduler, "bind_metrics", None)
            if bind is not None:
                bind(self.metrics)
        self._install_absorb_hook()
        if not self.server.is_admitted(app.name):
            try:
                self.server.admit_app(app.name)
            except RuntimeError as exc:
                raise ApiError(
                    ApiErrorCode.FAILED_PRECONDITION,
                    f"cannot admit app {app.name!r}: {exc}",
                    app=app.name,
                ) from None

    def _submit_training(
        self, tenant: Tenant, request: SubmitTrainingRequest
    ) -> SubmitTrainingResponse:
        self._require_active(tenant)
        app = self._get_app(tenant, request.app)
        steps = int(request.steps)
        if steps < 1:
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"steps must be >= 1, got {steps}",
            )
        pending = sum(
            1
            for record in self._jobs.values()
            if record.tenant == tenant.name
            and record.job.state in _LIVE_STATES
        )
        if pending + steps > tenant.quota.max_pending_jobs:
            raise ApiError(
                ApiErrorCode.QUOTA_EXCEEDED,
                f"tenant {tenant.name!r} has {pending} jobs in flight; "
                f"submitting {steps} more would exceed the quota of "
                f"{tenant.quota.max_pending_jobs} — poll existing job "
                "handles to completion first",
                pending=pending,
                requested=steps,
                limit=tenant.quota.max_pending_jobs,
            )
        with self._persisted_op():
            self._ensure_app_scheduled(tenant, app)
            scheduler = self.server.scheduler
            oracle = self.server._runtime_oracle
            user = self.server.apps.index(app)
            tenant_state = scheduler.tenants[user]
            handles = []
            for _ in range(steps):
                pick_started = time.perf_counter()
                selection = tenant_state.picker.select()
                pick_ended = time.perf_counter()
                self._m_pick_seconds.observe(pick_ended - pick_started)
                add_span(
                    "scheduler.pick", pick_started, pick_ended,
                    arm=int(selection.arm),
                )
                self._m_picks.labels(tenant.name).inc()
                reward, gpu_time = oracle.trainer.train(user, selection.arm)
                job = oracle.runtime.submit(
                    user, selection.arm, gpu_time, reward
                )
                record = _JobRecord(
                    handle_id=f"job-{len(self._jobs):05d}",
                    tenant=tenant.name,
                    app=request.app,
                    candidate=app.live_candidates[selection.arm].name,
                    job=job,
                    tenant_state=tenant_state,
                    selection=selection,
                )
                self._jobs[record.handle_id] = record
                self._jobs_by_runtime_id[job.job_id] = record
                handles.append(self._handle_of(record))
        self._persist(
            "job_submitted",
            {
                "tenant": tenant.name,
                "app": request.app,
                "steps": steps,
                "handles": [h.job_id for h in handles],
            },
        )
        return SubmitTrainingResponse(handles=tuple(handles))

    def _on_job_completed(self, job: Job) -> None:
        """Absorb one runtime completion into the scheduler state.

        Runs after the server's own completion hook has applied the
        training outcome to app state, so the freshly-appended history
        row is this job's.
        """
        record = self._jobs_by_runtime_id.get(job.job_id)
        if record is None:  # pragma: no cover - defensive
            return
        app = self.server.get_app(record.app)
        record.history_index = len(app.history) - 1
        self._handles_by_outcome[(record.app, record.history_index)] = (
            record.handle_id
        )
        self.server._runtime_oracle.absorb(
            self.server.scheduler,
            record.tenant_state,
            record.selection,
            job,
        )
        # Absorption done: the handle is terminal and fully consistent
        # (history row assigned), so long-poll waiters may wake now.
        record.done_event.set()
        outcome = (
            app.history[record.history_index]
            if 0 <= record.history_index < len(app.history)
            else None
        )
        self.events_broker.publish(
            "job_completed",
            tenant=record.tenant,
            app=record.app,
            job_id=record.handle_id,
            candidate=record.candidate,
            accuracy=(
                float(outcome.accuracy) if outcome is not None else None
            ),
            improved=(
                bool(outcome.improved) if outcome is not None else None
            ),
        )

    def _on_promotion(self, app: EaseMLApp) -> None:
        """A training outcome became ``app``'s new best model: stale
        cached predictions are unreachable (version-stamped keys) —
        reclaim their memory now, and tell stream subscribers."""
        self.infer_plane.invalidate_app(app.name)
        tenant_name = None
        for tenant in self._tenant_names.values():
            if app.name in tenant.view.apps:
                tenant_name = tenant.name
                break
        self.events_broker.publish(
            "model_promoted",
            tenant=tenant_name,
            app=app.name,
            candidate=app.best_candidate,
            accuracy=float(app.best_accuracy),
            model_version=self._model_version(app),
        )

    def configure_infer_plane(self, config: InferPlaneConfig) -> None:
        """Swap in a freshly-configured inference data plane (the
        ``repro serve --infer-batch-window/--infer-cache`` hook).
        Existing queues and cached predictions are discarded."""
        self.infer_plane = InferPlane(
            config=config, metrics=self.metrics
        )

    @staticmethod
    def _record_state(record: _JobRecord) -> str:
        """The API-visible state: gateway cancellation wins."""
        return "cancelled" if record.cancelled else record.job.state.value

    def _handle_of(self, record: _JobRecord) -> JobHandle:
        return JobHandle(
            job_id=record.handle_id,
            app=record.app,
            candidate=record.candidate,
            state=self._record_state(record),
            submitted_at=float(record.job.submit_time),
            disposition=record.disposition,
        )

    def _get_job(self, tenant: Tenant, handle_id: str) -> _JobRecord:
        record = self._jobs.get(handle_id)
        if record is None or record.tenant != tenant.name:
            raise ApiError(
                ApiErrorCode.NOT_FOUND,
                f"tenant {tenant.name!r} has no job {handle_id!r}; "
                "list jobs to see valid handles",
                job_id=handle_id,
            )
        return record

    def _job_status(
        self, tenant: Tenant, request: JobStatusRequest
    ) -> JobStatusResponse:
        record = self._get_job(tenant, request.job_id)
        # NaN/negative waits collapse to 0 (NaN fails the > 0 test), so
        # a hostile wait can neither spin forever nor dodge the cap.
        wait = float(request.wait or 0.0)
        wait = min(wait, MAX_WAIT_SECONDS) if wait > 0 else 0.0
        response, advanced = self._poll_job(request, record)
        if wait <= 0 or response.done:
            return response
        # Server-side push: park until the handle leaves
        # PENDING/RUNNING, the wait expires, or the frontend shuts
        # down.  The waiter drives the cluster itself while progress
        # is possible (each advance completes one job — maybe another
        # tenant's) and otherwise parks on the handle's done event,
        # which completions and cancellations set.  A wait that
        # expires is NOT an error: the caller gets the current,
        # still-running status with a 200.
        deadline = time.monotonic() + wait
        aborts = tuple(self._wait_aborts)
        self._m_parks.inc()
        park_started = time.perf_counter()
        reason = "timeout"
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._m_wakes.labels("timeout").inc()
                    return response
                if any(e.is_set() for e in aborts):
                    reason = "abort"
                    self._m_wakes.labels("abort").inc()
                    return response
                if not advanced:
                    record.done_event.wait(min(remaining, 0.05))
                response, advanced = self._poll_job(request, record)
                if response.done:
                    reason = "done"
                    self._m_wakes.labels("done").inc()
                    return response
        finally:
            add_span(
                "longpoll.wait", park_started, time.perf_counter(),
                reason=reason,
            )

    def _poll_job(
        self, request: JobStatusRequest, record: _JobRecord
    ) -> Tuple[JobStatusResponse, bool]:
        """One poll: advance the cluster by at most one completion.

        Returns ``(status, advanced)`` — ``advanced`` tells a long-poll
        loop whether this call made progress (so it knows when to park
        on the done event instead of spinning).
        """
        runtime = self.server._runtime_oracle.runtime
        advanced = False
        if record.job.state in _LIVE_STATES and not record.cancelled:
            # Advancing the shared cluster mutates global state, so a
            # live-job poll upgrades from the lock-free read path to
            # the gateway lock.
            with self._lock:
                if record.job.state in _LIVE_STATES and not record.cancelled:
                    # Each poll of a live job advances the simulated
                    # cluster by (at most) one completion event —
                    # possibly someone else's, which is exactly how
                    # out-of-order completions surface.
                    with self._persisted_op():
                        completed = runtime.run_until_next_completion()
                    # A poll is the one mutation with no primary
                    # record: the absorbed completions ARE the journal
                    # entries (replay re-advances the cluster once per
                    # leading job_completed record).
                    self._op_boundary()
                    advanced = bool(completed)
                    if not completed and not runtime.queue and (
                        record.job.state in _LIVE_STATES
                        and not record.cancelled
                    ):
                        raise ApiError(
                            ApiErrorCode.INTERNAL,
                            f"runtime stalled before job "
                            f"{request.job_id} completed (policy "
                            f"{runtime.policy.name!r} never scheduled "
                            "it)",
                            job_id=request.job_id,
                        )
        job = record.job
        if job.state is JobState.FINISHED and record.history_index is None:
            # A concurrent global-lock holder finished this job but has
            # not yet run the outcome hooks.  Taking (and releasing)
            # the global lock waits them out, so a finished job never
            # reports a missing accuracy.
            with self._lock:
                pass
        outcome = None
        if job.state is JobState.FINISHED and record.history_index is not None:
            app = self.server.get_app(record.app)
            outcome = app.history[record.history_index]
        response = JobStatusResponse(
            job_id=record.handle_id,
            app=record.app,
            candidate=record.candidate,
            state=self._record_state(record),
            submitted_at=float(job.submit_time),
            started_at=job.start_time,
            finished_at=job.end_time,
            accuracy=None if outcome is None else float(outcome.accuracy),
            improved=None if outcome is None else bool(outcome.improved),
            preemptions=int(job.preemptions),
            disposition=record.disposition,
        )
        return response, advanced

    def _list_jobs(
        self, tenant: Tenant, request: ListJobsRequest
    ) -> ListJobsResponse:
        if request.app is not None:
            self._get_app(tenant, request.app)
        # list(dict.values()) is a single C-level snapshot, safe
        # against a concurrent global-lock writer inserting new jobs;
        # iterating the live view here could raise "dictionary changed
        # size during iteration" under the shard-lock discipline.
        handles = tuple(
            self._handle_of(record)
            for record in list(self._jobs.values())
            if record.tenant == tenant.name
            and (request.app is None or record.app == request.app)
        )
        return ListJobsResponse(jobs=handles)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _app_status(
        self, tenant: Tenant, request: AppStatusRequest
    ) -> AppStatusResponse:
        app = self._get_app(tenant, request.app)
        trained = app.best_candidate is not None
        return AppStatusResponse(
            app=request.app,
            workload_kind=app.template.kind.value,
            n_examples=len(app.store),
            n_enabled=app.store.n_enabled,
            n_candidates=len(app.live_candidates),
            training_runs=len(app.history),
            best_accuracy=float(app.best_accuracy) if trained else None,
            best_candidate=app.best_candidate,
        )

    def _list_apps(
        self, tenant: Tenant, request: ListAppsRequest
    ) -> ListAppsResponse:
        return ListAppsResponse(apps=tuple(sorted(tenant.view.apps)))

    def _events(
        self, tenant: Tenant, request: EventsRequest
    ) -> EventsResponse:
        if request.stream:
            raise ApiError(
                ApiErrorCode.UNSUPPORTED,
                "event streaming (stream=1) is a transport feature of "
                "the asyncio HTTP frontend (serve --frontend asyncio); "
                "this transport only answers snapshot reads",
            )
        kinds = None
        if request.kinds is not None:
            valid = {k.value for k in EventKind}
            bad = [k for k in request.kinds if k not in valid]
            if bad:
                raise ApiError(
                    ApiErrorCode.INVALID_ARGUMENT,
                    f"unknown event kind(s) {bad}; valid kinds: "
                    f"{sorted(valid)}",
                )
            kinds = {EventKind(k) for k in request.kinds}
        # Tenant isolation: only events attributable to this tenant's
        # apps are visible — by app name (platform events) or by the
        # app's user index (runtime job-lifecycle events).
        apps = set(tenant.view.apps)
        users = {
            i for i, app in enumerate(self.server.apps) if app.name in apps
        }

        def visible(event) -> bool:
            payload = event.payload
            if "app" in payload:
                return payload["app"] in apps
            if "user" in payload:
                return payload["user"] in users
            return False

        events = tuple(
            event_to_dict(event)
            for event in self.server.log
            if event.time >= float(request.since)
            and (kinds is None or event.kind in kinds)
            and visible(event)
        )
        return EventsResponse(events=events)

    def _server_info(
        self, tenant: Tenant, request: ServerInfoRequest
    ) -> ServerInfoResponse:
        return ServerInfoResponse(
            placement=self.server.runtime_placement,
            n_gpus=self.server.n_gpus,
            n_apps=len(self.server.apps),
            n_jobs=len(self._jobs),
            clock=float(self.server.clock.now),
            training_started=self.server.scheduler is not None,
        )
