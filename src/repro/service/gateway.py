"""The service gateway: validation, tenancy, quotas, async job handles.

:class:`ServiceGateway` is the transport-agnostic router every
frontend (the HTTP server, the Python SDK used in-process, tests)
dispatches through.  It owns:

* **tenant identity** — auth tokens map to named tenants; every app
  belongs to the tenant that registered it, and cross-tenant access
  reports ``NOT_FOUND`` (names are not leaked across tenants);
* **quotas** — per-tenant ceilings on registered apps, jobs in
  flight, and example-store bytes, enforced *before* state changes;
* **async training** — ``SubmitTrainingRequest`` returns job handles
  immediately; the jobs run on the PR-1 discrete-event
  :class:`~repro.runtime.kernel.ClusterRuntime` under the server's
  placement policy, so many tenants keep work in flight and
  completions land out of submission order.  Each
  ``JobStatusRequest`` poll of a live job advances the simulated
  cluster by one completion event, and every completion is absorbed
  into the scheduler exactly once (picker observation, Algorithm 2
  recurrence, step record) in completion order.

The backend is the existing :class:`~repro.platform.server.EaseMLServer`
with its event-driven runtime enabled; the gateway never exposes it
directly — everything in and out is a typed message from
:mod:`repro.service.api`, and every failure is an
:class:`~repro.service.api.ApiError`.
"""

from __future__ import annotations

import secrets
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.engine.events import EventKind
from repro.engine.jobs import Job, JobState
from repro.platform.server import EaseMLApp, EaseMLServer
from repro.runtime.trace import event_to_dict
from repro.service.api import (
    API_VERSION,
    ApiError,
    ApiErrorCode,
    AppStatusRequest,
    AppStatusResponse,
    CloseAppRequest,
    CloseAppResponse,
    EventsRequest,
    EventsResponse,
    FeedRequest,
    FeedResponse,
    InferRequest,
    InferResponse,
    JobHandle,
    JobStatusRequest,
    JobStatusResponse,
    ListAppsRequest,
    ListAppsResponse,
    ListJobsRequest,
    ListJobsResponse,
    RefineRequest,
    RefineResponse,
    RegisterAppRequest,
    RegisterAppResponse,
    Request,
    Response,
    ServerInfoRequest,
    ServerInfoResponse,
    SetExampleEnabledRequest,
    SetExampleEnabledResponse,
    SubmitTrainingRequest,
    SubmitTrainingResponse,
)

#: Job states that still count against the pending-jobs quota.
_LIVE_STATES = (JobState.PENDING, JobState.RUNNING, JobState.PREEMPTED)

#: Request types served under the tenant's own lock instead of the
#: gateway-wide one: they only read tenant-scoped state (plus
#: GIL-atomic snapshots of shared structures), so concurrent readers
#: from different tenants no longer serialise on one RLock.  Anything
#: that mutates shared state — registration, feeds, submits, closes,
#: and the runtime advance inside a live job poll — still takes the
#: global lock.
_SHARDED_REQUESTS = (
    AppStatusRequest,
    EventsRequest,
    JobStatusRequest,
    ListAppsRequest,
    ListJobsRequest,
    RefineRequest,
    ServerInfoRequest,
)


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource ceilings the gateway enforces."""

    max_apps: int = 4
    max_pending_jobs: int = 8
    max_store_bytes: int = 16 * 1024 * 1024

    def __post_init__(self) -> None:
        for name in ("max_apps", "max_pending_jobs", "max_store_bytes"):
            if int(getattr(self, name)) < 1:
                raise ValueError(f"{name} must be >= 1")


@dataclass
class Tenant:
    """One authenticated principal and its resources."""

    name: str
    token: str
    quota: TenantQuota
    apps: List[str] = field(default_factory=list)
    #: Running example-store usage (updated on feed; stores are
    #: append-only, so this never needs recomputing).
    store_bytes: int = 0
    #: Per-tenant lock for read-only requests (see _SHARDED_REQUESTS);
    #: different tenants' reads proceed concurrently.
    lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )


@dataclass
class _JobRecord:
    """Gateway-side bookkeeping for one async training job."""

    handle_id: str
    tenant: str
    app: str
    candidate: str
    job: Job
    tenant_state: Any  # core.multitenant.TenantState
    selection: Any  # core.model_picking.Selection
    #: Row in the app's TrainingOutcome history — assigned when the
    #: job completes (outcomes land in completion order).
    history_index: Optional[int] = None


class ServiceGateway:
    """Typed request router over a runtime-backed :class:`EaseMLServer`.

    Parameters
    ----------
    server:
        An :class:`EaseMLServer` with ``runtime_placement`` set.  When
        omitted, one is built from the keyword arguments below.
    placement, n_gpus, scaling_efficiency, preemption_overhead, seed,
    min_examples:
        Backend shape used only when ``server`` is None.
    default_quota:
        Quota applied to tenants created without an explicit one.
    shard_read_locks:
        Serve read-only requests under per-tenant locks instead of the
        gateway-wide one (see ``_SHARDED_REQUESTS``).  On by default;
        the switch exists so the throughput benchmark can race the two
        locking disciplines against each other.
    """

    def __init__(
        self,
        server: Optional[EaseMLServer] = None,
        *,
        placement: str = "partition",
        n_gpus: int = 8,
        scaling_efficiency: float = 0.9,
        preemption_overhead: float = 0.0,
        seed: int = 0,
        min_examples: int = 10,
        default_quota: Optional[TenantQuota] = None,
        shard_read_locks: bool = True,
        zoo=None,
    ) -> None:
        if server is None:
            server = EaseMLServer(
                zoo,
                runtime_placement=placement,
                n_gpus=n_gpus,
                scaling_efficiency=scaling_efficiency,
                preemption_overhead=preemption_overhead,
                min_examples=min_examples,
                seed=seed,
            )
        if server.runtime_placement is None:
            raise ValueError(
                "the gateway needs an event-driven backend; construct "
                "the server with runtime_placement set (e.g. 'partition')"
            )
        self.server = server
        self.default_quota = default_quota or TenantQuota()
        self.shard_read_locks = bool(shard_read_locks)
        self._tenants: Dict[str, Tenant] = {}  # token -> tenant
        self._tenant_names: Dict[str, Tenant] = {}
        self._jobs: Dict[str, _JobRecord] = {}  # handle id -> record
        self._jobs_by_runtime_id: Dict[int, _JobRecord] = {}
        #: ``(app, history index) -> job handle id`` so infer can name
        #: the training run that produced the served model.
        self._handles_by_outcome: Dict[tuple, str] = {}
        self._lock = threading.RLock()
        self._absorb_hook_installed = False
        if self.server._runtime_oracle is not None:
            # Wrapping a server whose scheduler already started: hook
            # completions now, or job results would never be absorbed.
            self._install_absorb_hook()
        self._handlers = {
            RegisterAppRequest: self._register_app,
            FeedRequest: self._feed,
            RefineRequest: self._refine,
            SetExampleEnabledRequest: self._set_example_enabled,
            InferRequest: self._infer,
            SubmitTrainingRequest: self._submit_training,
            CloseAppRequest: self._close_app,
            JobStatusRequest: self._job_status,
            ListJobsRequest: self._list_jobs,
            AppStatusRequest: self._app_status,
            ListAppsRequest: self._list_apps,
            EventsRequest: self._events,
            ServerInfoRequest: self._server_info,
        }

    # ------------------------------------------------------------------
    # Tenant management (operator-side, not part of the request API)
    # ------------------------------------------------------------------
    def create_tenant(
        self,
        name: str,
        quota: Optional[TenantQuota] = None,
        *,
        apps: Optional[List[str]] = None,
    ) -> str:
        """Register a tenant; returns its auth token.

        ``apps`` adopts apps already registered on the backing server
        (the pre-started-server path), making them this tenant's.
        """
        with self._lock:
            if name in self._tenant_names:
                raise ValueError(f"tenant {name!r} already exists")
            token = f"tok-{secrets.token_hex(12)}"
            tenant = Tenant(name, token, quota or self.default_quota)
            for app_name in apps or ():
                owner = next(
                    (
                        t.name
                        for t in self._tenants.values()
                        if app_name in t.apps
                    ),
                    None,
                )
                if owner is not None:
                    raise ValueError(
                        f"app {app_name!r} already belongs to tenant "
                        f"{owner!r}"
                    )
                app = self.server.get_app(app_name)  # NOT_FOUND if absent
                tenant.apps.append(app_name)
                tenant.store_bytes += sum(
                    e.x.nbytes + e.y.nbytes for e in app.store
                )
            self._tenants[token] = tenant
            self._tenant_names[name] = tenant
            return token

    def tenant_names(self) -> List[str]:
        with self._lock:
            return sorted(self._tenant_names)

    # ------------------------------------------------------------------
    # The single entry point
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Validate, authenticate, dispatch; all failures are ApiError."""
        if not isinstance(request, Request):
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"expected a service Request, got {type(request).__name__}",
            )
        if request.api_version != API_VERSION:
            raise ApiError(
                ApiErrorCode.UNSUPPORTED_VERSION,
                f"this server speaks api_version {API_VERSION!r}, the "
                f"request declares {request.api_version!r}",
                supported=API_VERSION,
            )
        handler = self._handlers.get(type(request))
        if handler is None:
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"no handler for request type {type(request).__name__}",
            )
        # Token -> tenant is a single dict read (tenants are never
        # deleted), safe without the lock; the request then runs under
        # the tenant's own lock when it is read-only, or the gateway
        # lock when it can mutate shared state.  Lock order is always
        # tenant -> global (a live job poll upgrades), never the
        # reverse, so the two tiers cannot deadlock.
        tenant = self._authenticate(request)
        lock = (
            tenant.lock
            if self.shard_read_locks
            and isinstance(request, _SHARDED_REQUESTS)
            else self._lock
        )
        with lock:
            try:
                return handler(tenant, request)
            except ApiError:
                raise
            except Exception as exc:  # noqa: BLE001 - boundary catch-all
                # Nothing below the gateway may leak a raw traceback
                # across the service boundary.
                raise ApiError(
                    ApiErrorCode.INTERNAL,
                    f"unexpected {type(exc).__name__} while handling "
                    f"{type(request).__name__}: {exc}",
                    error_type=type(exc).__name__,
                ) from exc

    def _authenticate(self, request: Request) -> Tenant:
        tenant = self._tenants.get(request.auth_token)
        if tenant is None:
            raise ApiError(
                ApiErrorCode.UNAUTHORIZED,
                "unknown auth token; ask the operator for a tenant "
                "token (created via ServiceGateway.create_tenant)",
            )
        return tenant

    # ------------------------------------------------------------------
    # App lifecycle
    # ------------------------------------------------------------------
    def _register_app(
        self, tenant: Tenant, request: RegisterAppRequest
    ) -> RegisterAppResponse:
        name = request.app
        if not name or not isinstance(name, str):
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                "app name must be a non-empty string",
            )
        if len(tenant.apps) >= tenant.quota.max_apps:
            raise ApiError(
                ApiErrorCode.QUOTA_EXCEEDED,
                f"tenant {tenant.name!r} already has "
                f"{len(tenant.apps)} apps (quota: "
                f"{tenant.quota.max_apps}); delete is not supported, "
                "so raise the quota or reuse an existing app",
                limit=tenant.quota.max_apps,
            )
        if name in self.server.storage:
            raise ApiError(
                ApiErrorCode.CONFLICT,
                f"an app named {name!r} already exists; app names are "
                "global across tenants — pick another name",
                app=name,
            )
        try:
            app = self.server.register_app(request.program, name)
        except NotImplementedError as exc:
            raise ApiError(
                ApiErrorCode.UNSUPPORTED, str(exc), app=name
            ) from None
        except ValueError as exc:
            raise ApiError(
                ApiErrorCode.INVALID_PROGRAM,
                f"cannot parse DSL program for app {name!r}: {exc}",
                app=name,
            ) from None
        tenant.apps.append(name)
        return RegisterAppResponse(
            app=name,
            workload_kind=app.template.kind.value,
            n_candidates=len(app.live_candidates),
        )

    def _get_app(self, tenant: Tenant, name: str) -> EaseMLApp:
        if name not in tenant.apps:
            raise ApiError(
                ApiErrorCode.NOT_FOUND,
                f"tenant {tenant.name!r} has no app named {name!r}; "
                f"its apps are {sorted(tenant.apps)}",
                app=name,
            )
        return self.server.get_app(name)

    def _feed(self, tenant: Tenant, request: FeedRequest) -> FeedResponse:
        app = self._get_app(tenant, request.app)
        if len(request.inputs) != len(request.outputs):
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"got {len(request.inputs)} inputs but "
                f"{len(request.outputs)} outputs",
            )
        if not request.inputs:
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                "feed requires at least one example pair",
            )
        # Quota check before any state changes: stored examples are
        # float64 rows of declared input+output size.
        incoming = (
            len(request.inputs)
            * (app.program.input.flat_size + app.program.output.flat_size)
            * 8
        )
        used = tenant.store_bytes
        if used + incoming > tenant.quota.max_store_bytes:
            raise ApiError(
                ApiErrorCode.QUOTA_EXCEEDED,
                f"feeding {incoming} bytes would exceed tenant "
                f"{tenant.name!r}'s example-store quota "
                f"({used} of {tenant.quota.max_store_bytes} bytes used); "
                "disable and re-feed smaller batches or raise the quota",
                used=used,
                incoming=incoming,
                limit=tenant.quota.max_store_bytes,
            )
        try:
            inputs = [np.asarray(x, dtype=float) for x in request.inputs]
            outputs = [
                int(y) if np.isscalar(y) or isinstance(y, (int, float))
                else np.asarray(y, dtype=float)
                for y in request.outputs
            ]
            ids = app.feed(inputs, outputs)
        except (ValueError, TypeError) as exc:
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"cannot feed app {request.app!r}: {exc}",
                app=request.app,
            ) from None
        tenant.store_bytes += incoming
        return FeedResponse(
            app=request.app,
            example_ids=tuple(ids),
            n_total=len(app.store),
            n_enabled=app.store.n_enabled,
        )

    def _refine(
        self, tenant: Tenant, request: RefineRequest
    ) -> RefineResponse:
        app = self._get_app(tenant, request.app)
        return RefineResponse(
            app=request.app,
            examples=tuple(app.refine()),
        )

    def _set_example_enabled(
        self, tenant: Tenant, request: SetExampleEnabledRequest
    ) -> SetExampleEnabledResponse:
        app = self._get_app(tenant, request.app)
        app.set_example_enabled(int(request.example_id), request.enabled)
        return SetExampleEnabledResponse(
            app=request.app,
            example_id=int(request.example_id),
            enabled=bool(request.enabled),
        )

    def _infer(self, tenant: Tenant, request: InferRequest) -> InferResponse:
        app = self._get_app(tenant, request.app)
        try:
            x = np.asarray(request.x, dtype=float)
        except (ValueError, TypeError) as exc:
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"infer input is not numeric: {exc}",
            ) from None
        if x.size != app.program.input.flat_size:
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"infer input has {x.size} scalars, app {request.app!r} "
                f"declares {app.program.input.flat_size}",
                expected=app.program.input.flat_size,
                got=int(x.size),
            )
        try:
            prediction = app.infer(x)
        except RuntimeError as exc:
            raise ApiError(
                ApiErrorCode.FAILED_PRECONDITION,
                f"{exc}; submit training and poll the job handle first",
                app=request.app,
            ) from None
        return InferResponse(
            app=request.app,
            prediction=int(prediction),
            model=app.best_candidate,
            model_version=self._model_version(app),
        )

    def _model_version(self, app) -> Optional[str]:
        """The job handle (or run number) that trained the served model."""
        if app.best_version is None:
            return None
        return self._handles_by_outcome.get(
            (app.name, app.best_version - 1),
            f"run-{app.best_version:05d}",
        )

    def _close_app(
        self, tenant: Tenant, request: CloseAppRequest
    ) -> CloseAppResponse:
        app = self._get_app(tenant, request.app)
        if app.closed:
            raise ApiError(
                ApiErrorCode.CONFLICT,
                f"app {request.app!r} is already closed",
                app=request.app,
            )
        was_admitted = self.server.is_admitted(request.app)
        try:
            cancelled_ids = self.server.retire_app(request.app)
        except RuntimeError as exc:  # pragma: no cover - defensive
            raise ApiError(
                ApiErrorCode.FAILED_PRECONDITION,
                f"cannot close app {request.app!r}: {exc}",
                app=request.app,
            ) from None
        cancelled = tuple(
            sorted(
                record.handle_id
                for jid in cancelled_ids
                for record in [self._jobs_by_runtime_id.get(jid)]
                if record is not None
            )
        )
        return CloseAppResponse(
            app=request.app,
            cancelled_jobs=cancelled,
            was_admitted=was_admitted,
        )

    # ------------------------------------------------------------------
    # Async training
    # ------------------------------------------------------------------
    def _install_absorb_hook(self) -> None:
        if not self._absorb_hook_installed:
            self.server._runtime_oracle.runtime.on_completion(
                self._on_job_completed
            )
            self._absorb_hook_installed = True

    def _require_enough_examples(self, app) -> None:
        if app.store.n_enabled < self.server.min_examples:
            raise ApiError(
                ApiErrorCode.FAILED_PRECONDITION,
                f"cannot train app {app.name!r}: it has "
                f"{app.store.n_enabled} enabled examples and at least "
                f"{self.server.min_examples} are required — feed more "
                "first",
                app=app.name,
                min_examples=self.server.min_examples,
            )

    def _ensure_app_scheduled(self, tenant: Tenant, app) -> None:
        """Start the cluster run and/or admit this app to it.

        Membership is dynamic: the first submit starts scheduling over
        every app that is already fed past the threshold, and any app
        fed later — registered before or after that first submit —
        joins the live run as a ``USER_ARRIVED`` tenant at its own
        first submit.  No tenant is ever blocked on another tenant's
        unfed app.
        """
        if app.closed:
            raise ApiError(
                ApiErrorCode.FAILED_PRECONDITION,
                f"app {app.name!r} is closed; closing is permanent — "
                "register a new app to keep training",
                app=app.name,
            )
        self._require_enough_examples(app)
        if self.server.scheduler is None:
            try:
                self.server._prepare(only_ready=True)
            except RuntimeError as exc:
                raise ApiError(
                    ApiErrorCode.FAILED_PRECONDITION,
                    f"cannot start training: {exc}",
                ) from None
        self._install_absorb_hook()
        if not self.server.is_admitted(app.name):
            try:
                self.server.admit_app(app.name)
            except RuntimeError as exc:
                raise ApiError(
                    ApiErrorCode.FAILED_PRECONDITION,
                    f"cannot admit app {app.name!r}: {exc}",
                    app=app.name,
                ) from None

    def _submit_training(
        self, tenant: Tenant, request: SubmitTrainingRequest
    ) -> SubmitTrainingResponse:
        app = self._get_app(tenant, request.app)
        steps = int(request.steps)
        if steps < 1:
            raise ApiError(
                ApiErrorCode.INVALID_ARGUMENT,
                f"steps must be >= 1, got {steps}",
            )
        pending = sum(
            1
            for record in self._jobs.values()
            if record.tenant == tenant.name
            and record.job.state in _LIVE_STATES
        )
        if pending + steps > tenant.quota.max_pending_jobs:
            raise ApiError(
                ApiErrorCode.QUOTA_EXCEEDED,
                f"tenant {tenant.name!r} has {pending} jobs in flight; "
                f"submitting {steps} more would exceed the quota of "
                f"{tenant.quota.max_pending_jobs} — poll existing job "
                "handles to completion first",
                pending=pending,
                requested=steps,
                limit=tenant.quota.max_pending_jobs,
            )
        self._ensure_app_scheduled(tenant, app)
        scheduler = self.server.scheduler
        oracle = self.server._runtime_oracle
        user = self.server.apps.index(app)
        tenant_state = scheduler.tenants[user]
        handles = []
        for _ in range(steps):
            selection = tenant_state.picker.select()
            reward, gpu_time = oracle.trainer.train(user, selection.arm)
            job = oracle.runtime.submit(user, selection.arm, gpu_time, reward)
            record = _JobRecord(
                handle_id=f"job-{len(self._jobs):05d}",
                tenant=tenant.name,
                app=request.app,
                candidate=app.live_candidates[selection.arm].name,
                job=job,
                tenant_state=tenant_state,
                selection=selection,
            )
            self._jobs[record.handle_id] = record
            self._jobs_by_runtime_id[job.job_id] = record
            handles.append(self._handle_of(record))
        return SubmitTrainingResponse(handles=tuple(handles))

    def _on_job_completed(self, job: Job) -> None:
        """Absorb one runtime completion into the scheduler state.

        Runs after the server's own completion hook has applied the
        training outcome to app state, so the freshly-appended history
        row is this job's.
        """
        record = self._jobs_by_runtime_id.get(job.job_id)
        if record is None:  # pragma: no cover - defensive
            return
        app = self.server.get_app(record.app)
        record.history_index = len(app.history) - 1
        self._handles_by_outcome[(record.app, record.history_index)] = (
            record.handle_id
        )
        self.server._runtime_oracle.absorb(
            self.server.scheduler,
            record.tenant_state,
            record.selection,
            job,
        )

    def _handle_of(self, record: _JobRecord) -> JobHandle:
        return JobHandle(
            job_id=record.handle_id,
            app=record.app,
            candidate=record.candidate,
            state=record.job.state.value,
            submitted_at=float(record.job.submit_time),
        )

    def _get_job(self, tenant: Tenant, handle_id: str) -> _JobRecord:
        record = self._jobs.get(handle_id)
        if record is None or record.tenant != tenant.name:
            raise ApiError(
                ApiErrorCode.NOT_FOUND,
                f"tenant {tenant.name!r} has no job {handle_id!r}; "
                "list jobs to see valid handles",
                job_id=handle_id,
            )
        return record

    def _job_status(
        self, tenant: Tenant, request: JobStatusRequest
    ) -> JobStatusResponse:
        record = self._get_job(tenant, request.job_id)
        runtime = self.server._runtime_oracle.runtime
        if record.job.state in _LIVE_STATES:
            # Advancing the shared cluster mutates global state, so a
            # live-job poll upgrades from the tenant's shard lock to
            # the gateway lock (tenant -> global, never the reverse).
            with self._lock:
                if record.job.state in _LIVE_STATES:
                    # Each poll of a live job advances the simulated
                    # cluster by (at most) one completion event —
                    # possibly someone else's, which is exactly how
                    # out-of-order completions surface.
                    completed = runtime.run_until_next_completion()
                    if not completed and not runtime.queue and (
                        record.job.state in _LIVE_STATES
                    ):
                        raise ApiError(
                            ApiErrorCode.INTERNAL,
                            f"runtime stalled before job "
                            f"{request.job_id} completed (policy "
                            f"{runtime.policy.name!r} never scheduled "
                            "it)",
                            job_id=request.job_id,
                        )
        job = record.job
        if job.state is JobState.FINISHED and record.history_index is None:
            # A concurrent global-lock holder finished this job but has
            # not yet run the outcome hooks.  Taking (and releasing)
            # the global lock waits them out, so a finished job never
            # reports a missing accuracy.
            with self._lock:
                pass
        outcome = None
        if job.state is JobState.FINISHED and record.history_index is not None:
            app = self.server.get_app(record.app)
            outcome = app.history[record.history_index]
        return JobStatusResponse(
            job_id=record.handle_id,
            app=record.app,
            candidate=record.candidate,
            state=job.state.value,
            submitted_at=float(job.submit_time),
            started_at=job.start_time,
            finished_at=job.end_time,
            accuracy=None if outcome is None else float(outcome.accuracy),
            improved=None if outcome is None else bool(outcome.improved),
            preemptions=int(job.preemptions),
        )

    def _list_jobs(
        self, tenant: Tenant, request: ListJobsRequest
    ) -> ListJobsResponse:
        if request.app is not None:
            self._get_app(tenant, request.app)
        # list(dict.values()) is a single C-level snapshot, safe
        # against a concurrent global-lock writer inserting new jobs;
        # iterating the live view here could raise "dictionary changed
        # size during iteration" under the shard-lock discipline.
        handles = tuple(
            self._handle_of(record)
            for record in list(self._jobs.values())
            if record.tenant == tenant.name
            and (request.app is None or record.app == request.app)
        )
        return ListJobsResponse(jobs=handles)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _app_status(
        self, tenant: Tenant, request: AppStatusRequest
    ) -> AppStatusResponse:
        app = self._get_app(tenant, request.app)
        trained = app.best_candidate is not None
        return AppStatusResponse(
            app=request.app,
            workload_kind=app.template.kind.value,
            n_examples=len(app.store),
            n_enabled=app.store.n_enabled,
            n_candidates=len(app.live_candidates),
            training_runs=len(app.history),
            best_accuracy=float(app.best_accuracy) if trained else None,
            best_candidate=app.best_candidate,
        )

    def _list_apps(
        self, tenant: Tenant, request: ListAppsRequest
    ) -> ListAppsResponse:
        return ListAppsResponse(apps=tuple(sorted(tenant.apps)))

    def _events(
        self, tenant: Tenant, request: EventsRequest
    ) -> EventsResponse:
        kinds = None
        if request.kinds is not None:
            valid = {k.value for k in EventKind}
            bad = [k for k in request.kinds if k not in valid]
            if bad:
                raise ApiError(
                    ApiErrorCode.INVALID_ARGUMENT,
                    f"unknown event kind(s) {bad}; valid kinds: "
                    f"{sorted(valid)}",
                )
            kinds = {EventKind(k) for k in request.kinds}
        # Tenant isolation: only events attributable to this tenant's
        # apps are visible — by app name (platform events) or by the
        # app's user index (runtime job-lifecycle events).
        apps = set(tenant.apps)
        users = {
            i for i, app in enumerate(self.server.apps) if app.name in apps
        }

        def visible(event) -> bool:
            payload = event.payload
            if "app" in payload:
                return payload["app"] in apps
            if "user" in payload:
                return payload["user"] in users
            return False

        events = tuple(
            event_to_dict(event)
            for event in self.server.log
            if event.time >= float(request.since)
            and (kinds is None or event.kind in kinds)
            and visible(event)
        )
        return EventsResponse(events=events)

    def _server_info(
        self, tenant: Tenant, request: ServerInfoRequest
    ) -> ServerInfoResponse:
        return ServerInfoResponse(
            placement=self.server.runtime_placement,
            n_gpus=self.server.n_gpus,
            n_apps=len(self.server.apps),
            n_jobs=len(self._jobs),
            clock=float(self.server.clock.now),
            training_started=self.server.scheduler is not None,
        )
