"""Synthetic data generators (Section 5.1 and Appendix B).

Two generators are provided:

* :func:`generate_syn` — the two-factor model used for the four named
  ``SYN(σ_M, α)`` datasets of Figure 8:
  ``x_{i,j} = b_i + α · m_j`` with per-user baselines
  ``b_i ~ N(μ_b, σ_b²)`` and, *for each user*, a correlated model
  fluctuation vector ``[m_1 … m_K] ~ N(0, Σ_M)`` where
  ``Σ_M[j, j'] = exp(-(f(j) - f(j'))² / σ_M²)`` over hidden model
  features ``f(j) ~ U(0, 1)``.
* :func:`generate_full_synthetic` — the full Appendix-B generative
  model with baseline groups, model groups, user groups and white
  noise: ``x_{i,j} = b_i + m_j + u_i + ε_{i,j}``.

Both clip qualities into [0, 1] as Appendix B prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import ModelInfo, ModelSelectionDataset
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive

#: The four synthetic configurations evaluated in the paper (Figure 8).
SYN_CONFIGS: Tuple[Tuple[float, float], ...] = (
    (0.01, 0.1),
    (0.01, 1.0),
    (0.5, 0.1),
    (0.5, 1.0),
)


def hidden_feature_covariance(
    features: np.ndarray, sigma: float
) -> np.ndarray:
    """``Σ[i, j] = exp(-(f_i - f_j)² / σ²)`` over hidden features.

    Larger ``σ`` ⇒ stronger correlation between items with different
    hidden features (the paper increases σ_M from 0.01 to 0.5 to
    strengthen model correlation).
    """
    sigma = check_positive(sigma, "sigma")
    features = np.asarray(features, dtype=float).ravel()
    delta = features[:, None] - features[None, :]
    cov = np.exp(-(delta**2) / sigma**2)
    # Tiny diagonal boost keeps Cholesky sampling stable when features
    # nearly coincide.
    return cov + 1e-9 * np.eye(features.shape[0])


def _sample_correlated(
    rng: np.random.Generator, cov: np.ndarray, n_samples: int
) -> np.ndarray:
    """``n_samples`` draws from ``N(0, cov)``, shape (n_samples, dim)."""
    chol = np.linalg.cholesky(cov + 1e-9 * np.eye(cov.shape[0]))
    raw = rng.standard_normal((n_samples, cov.shape[0]))
    return raw @ chol.T


def generate_syn(
    sigma_m: float,
    alpha: float,
    *,
    n_users: int = 200,
    n_models: int = 100,
    baseline_groups: Sequence[Tuple[float, float]] = ((0.75, 0.1), (0.25, 0.1)),
    cost_low: float = 0.05,
    cost_high: float = 1.0,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> ModelSelectionDataset:
    """One ``SYN(σ_M, α)`` dataset (Section 5.1's two-factor model).

    Parameters
    ----------
    sigma_m:
        Strength of the model correlation (σ_M).
    alpha:
        Weight of the model-correlation term in the final quality;
        lowering it amplifies the model-irrelevant baseline spread.
    baseline_groups:
        ``(μ_b, σ_b)`` pairs; users are split evenly across groups
        (Appendix B.2 uses {(0.75, σ_B), (0.25, σ_B)} — some tasks are
        easy, some hard; "if all users' tasks are equally hard, why not
        round-robin").
    cost_low / cost_high:
        Per-(user, model) costs are drawn ``U(cost_low, cost_high)``
        (the paper "generates costs randomly" for synthetic datasets;
        the lower bound stays positive so costs remain valid times).
    """
    sigma_m = check_positive(sigma_m, "sigma_m")
    alpha = check_positive(alpha, "alpha", strict=False)
    if n_users < 1 or n_models < 1:
        raise ValueError("n_users and n_models must be >= 1")
    rng = RandomState(seed)

    # Per-user baselines from evenly assigned baseline groups.
    baselines = np.empty(n_users)
    group_of_user = np.arange(n_users) % len(baseline_groups)
    for g, (mu_b, s_b) in enumerate(baseline_groups):
        members = group_of_user == g
        baselines[members] = rng.normal(mu_b, s_b, int(np.sum(members)))

    # Hidden model features and their covariance.
    features = rng.uniform(0.0, 1.0, n_models)
    cov_m = hidden_feature_covariance(features, sigma_m)

    # For each user, a correlated fluctuation vector over models.
    fluctuations = _sample_correlated(rng, cov_m, n_users)

    quality = np.clip(baselines[:, None] + alpha * fluctuations, 0.0, 1.0)
    cost = rng.uniform(cost_low, cost_high, (n_users, n_models))

    models = [
        ModelInfo(
            name=f"syn-model-{j}",
            citations=float(rng.integers(1, 10_000)),
            year=float(2008 + rng.integers(0, 10)),
            family=f"feature-{features[j]:.2f}",
        )
        for j in range(n_models)
    ]
    return ModelSelectionDataset(
        name=name or f"SYN({sigma_m:g},{alpha:.1f})",
        quality=quality,
        cost=cost,
        models=models,
        user_names=[f"syn-user-{i}" for i in range(n_users)],
        quality_kind="synthetic",
        cost_kind="synthetic",
    )


def load_all_syn(
    seed: int = 0, *, n_users: int = 200, n_models: int = 100
) -> Dict[str, ModelSelectionDataset]:
    """The four named SYN datasets of Figure 8."""
    out = {}
    for k, (sigma_m, alpha) in enumerate(SYN_CONFIGS):
        dataset = generate_syn(
            sigma_m,
            alpha,
            n_users=n_users,
            n_models=n_models,
            seed=(seed, "syn", k) if seed is None else seed * 1000 + k,
        )
        out[dataset.name] = dataset
    return out


# ----------------------------------------------------------------------
# Full Appendix-B generative model
# ----------------------------------------------------------------------
@dataclass
class SyntheticSpec:
    """The Appendix-B tuple ``(B, M, U, σ_W, p_U, p_M)``.

    Attributes
    ----------
    baseline_groups:
        ``(μ_b, σ_b)`` per baseline group B.
    model_groups:
        ``(σ_M, n_models)`` per model group M (p_M folded in).
    user_groups:
        ``σ_U`` per user group U.
    users_per_combo:
        ``p_U`` — users for every (baseline group × user group) cell.
    sigma_w:
        White-noise standard deviation σ_W.
    alpha_m / alpha_u:
        Optional weights of the model/user fluctuation terms (1.0
        reproduces Appendix B literally; the SYN datasets use α on the
        model term only).
    """

    baseline_groups: Sequence[Tuple[float, float]] = field(
        default_factory=lambda: [(0.75, 0.05), (0.25, 0.05)]
    )
    model_groups: Sequence[Tuple[float, int]] = field(
        default_factory=lambda: [(0.5, 100)]
    )
    user_groups: Sequence[float] = field(default_factory=lambda: [0.5])
    users_per_combo: int = 50
    sigma_w: float = 0.01
    alpha_m: float = 1.0
    alpha_u: float = 1.0

    @property
    def n_users(self) -> int:
        return (
            len(self.baseline_groups)
            * len(self.user_groups)
            * self.users_per_combo
        )

    @property
    def n_models(self) -> int:
        return sum(size for _, size in self.model_groups)


def generate_full_synthetic(
    spec: SyntheticSpec,
    *,
    cost_low: float = 0.05,
    cost_high: float = 1.0,
    seed: SeedLike = None,
    name: str = "SYN-FULL",
) -> ModelSelectionDataset:
    """Sample a dataset from the full Appendix-B generative model.

    ``x_{i,j} = b_i + α_m·m_j + α_u·u_i + ε_{i,j}`` clipped to [0, 1]:

    * ``b_i`` from the user's baseline group;
    * for each user, ``[m_1 … m_K] ~ N(0, Σ_M)`` blockwise per model
      group, with hidden features ``f(M_j) ~ U(0, 1)``;
    * for each model, ``[u_1 … u_N] ~ N(0, Σ_U)`` blockwise per user
      group, with hidden user features;
    * ``ε_{i,j} ~ N(0, σ_W²)`` i.i.d.
    """
    rng = RandomState(seed)
    n_users, n_models = spec.n_users, spec.n_models
    if n_users < 1 or n_models < 1:
        raise ValueError("spec describes an empty dataset")

    # --- assign users to (baseline, user-group) combos ------------------
    baselines = np.empty(n_users)
    user_group_of = np.empty(n_users, dtype=int)
    idx = 0
    for b, (mu_b, s_b) in enumerate(spec.baseline_groups):
        for u, _sigma_u in enumerate(spec.user_groups):
            block = slice(idx, idx + spec.users_per_combo)
            baselines[block] = rng.normal(mu_b, s_b, spec.users_per_combo)
            user_group_of[block] = u
            idx += spec.users_per_combo

    # --- model groups: per-user correlated fluctuations -----------------
    model_term = np.zeros((n_users, n_models))
    model_families: List[str] = []
    col = 0
    for g, (sigma_m, size) in enumerate(spec.model_groups):
        features = rng.uniform(0.0, 1.0, size)
        cov_m = hidden_feature_covariance(features, sigma_m)
        model_term[:, col : col + size] = _sample_correlated(
            rng, cov_m, n_users
        )
        model_families.extend(f"model-group-{g}" for _ in range(size))
        col += size

    # --- user groups: per-model correlated fluctuations -----------------
    user_term = np.zeros((n_users, n_models))
    for u, sigma_u in enumerate(spec.user_groups):
        members = np.flatnonzero(user_group_of == u)
        features = rng.uniform(0.0, 1.0, members.shape[0])
        cov_u = hidden_feature_covariance(features, sigma_u)
        draws = _sample_correlated(rng, cov_u, n_models)  # (models, members)
        user_term[members[:, None], np.arange(n_models)[None, :]] = draws.T

    noise = rng.normal(0.0, spec.sigma_w, (n_users, n_models))
    quality = np.clip(
        baselines[:, None]
        + spec.alpha_m * model_term
        + spec.alpha_u * user_term
        + noise,
        0.0,
        1.0,
    )
    cost = rng.uniform(cost_low, cost_high, (n_users, n_models))

    models = [
        ModelInfo(
            name=f"synfull-model-{j}",
            citations=float(rng.integers(1, 10_000)),
            year=float(2008 + rng.integers(0, 10)),
            family=model_families[j],
        )
        for j in range(n_models)
    ]
    return ModelSelectionDataset(
        name=name,
        quality=quality,
        cost=cost,
        models=models,
        user_names=[f"synfull-user-{i}" for i in range(n_users)],
        quality_kind="synthetic",
        cost_kind="synthetic",
    )
