"""Calibrated simulation of the 179CLASSIFIER dataset (Section 5.1).

The paper's 179CLASSIFIER matrix comes from Delgado et al., "Do we
need hundreds of classifiers to solve real world classification
problems?" (JMLR 2014): 121 UCI datasets (used as users) × 179
classifiers, with *real* accuracies and — because the original study
does not report training times — *synthetic* costs drawn U(0, 1).

The published table is not bundled here (no network), so we generate a
family-structured surrogate that preserves the properties the
experiment exploits:

* 17 algorithm families (random forests, SVMs, neural nets, boosting,
  …) with strong within-family quality correlation — the structure the
  GP kernel learns;
* per-dataset (user) difficulty spread matching Delgado's headline
  numbers (random-forest-family average accuracy ≈ 0.82 of the maximum,
  weak baselines far below);
* a long tail of weak models, so exhaustive exploration is wasteful.

Costs are U(0, 1) exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.base import ModelInfo, ModelSelectionDataset
from repro.utils.rng import RandomState, SeedLike

#: (family name, #models in family, family strength, within-family spread)
#: Sizes sum to 179.  Strength is the family's mean edge (positive) or
#: deficit (negative) relative to the per-dataset baseline; Delgado et
#: al. rank random-forest and SVM variants on top.
CLASSIFIER_FAMILIES: Tuple[Tuple[str, int, float, float], ...] = (
    ("random-forest", 8, 0.10, 0.02),
    ("svm", 10, 0.09, 0.03),
    ("neural-net", 21, 0.06, 0.05),
    ("boosting", 20, 0.07, 0.04),
    ("bagging", 24, 0.05, 0.04),
    ("decision-tree", 14, 0.00, 0.04),
    ("rule-based", 12, -0.02, 0.05),
    ("discriminant", 20, 0.02, 0.04),
    ("nearest-neighbor", 5, 0.03, 0.03),
    ("partial-least-squares", 6, -0.01, 0.03),
    ("logistic-multinomial", 3, 0.02, 0.02),
    ("marginal", 2, -0.25, 0.05),
    ("bayesian", 6, 0.01, 0.03),
    ("glm", 5, -0.01, 0.03),
    ("gaussian-process", 6, 0.04, 0.03),
    ("stacking", 2, 0.03, 0.02),
    ("other", 15, -0.05, 0.08),
)


def _check_family_total() -> int:
    total = sum(size for _, size, _, _ in CLASSIFIER_FAMILIES)
    assert total == 179, f"family sizes must sum to 179, got {total}"
    return total


def load_179classifier(
    *,
    n_users: int = 121,
    seed: SeedLike = 0,
    noise_scale: float = 0.02,
) -> ModelSelectionDataset:
    """Generate the calibrated 121 × 179 matrix with U(0, 1) costs.

    Quality model per user ``i`` and model ``j`` in family ``F``:

    ``q_{i,j} = clip(base_i + affinity_{i,F} + strength_F
    + within_{j} · spread_F + ε, 0, 1)``

    where ``base_i`` is the dataset's difficulty, ``affinity_{i,F}`` a
    per-(dataset, family) interaction (some families suit some data),
    ``within_j`` a fixed per-model offset shared across users (model
    identity), and ``ε`` small i.i.d. noise.  The shared ``within_j``
    and ``strength_F`` terms are what make model columns correlated —
    the signal the multi-task kernel learns from training users.
    """
    n_models = _check_family_total()
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    rng = RandomState(seed)

    # Dataset difficulty: mean best accuracy around 0.86 (Delgado's
    # maxima average), with hard outliers.
    base = rng.beta(5.0, 2.0, n_users) * 0.5 + 0.35

    families: List[str] = []
    strength = np.empty(n_models)
    spread = np.empty(n_models)
    within = np.empty(n_models)
    names: List[str] = []
    col = 0
    for family, size, fam_strength, fam_spread in CLASSIFIER_FAMILIES:
        for k in range(size):
            families.append(family)
            strength[col] = fam_strength
            spread[col] = fam_spread
            within[col] = rng.normal(0.0, 1.0)
            names.append(f"{family}-{k}")
            col += 1

    family_index: Dict[str, int] = {}
    for family in families:
        family_index.setdefault(family, len(family_index))
    fam_of_model = np.array([family_index[f] for f in families])

    # Per-(user, family) affinity.
    affinity = rng.normal(0.0, 0.03, (n_users, len(family_index)))

    noise = rng.normal(0.0, noise_scale, (n_users, n_models))
    quality = np.clip(
        base[:, None]
        + strength[None, :]
        + within[None, :] * spread[None, :]
        + affinity[:, fam_of_model]
        + noise,
        0.0,
        1.0,
    )

    # Synthetic costs exactly as the paper: U(0, 1) — kept strictly
    # positive so they remain valid execution times.
    cost = rng.uniform(0.01, 1.0, (n_users, n_models))

    models = [
        ModelInfo(
            name=names[j],
            citations=float(rng.integers(10, 30_000)),
            year=float(1986 + rng.integers(0, 28)),
            family=families[j],
        )
        for j in range(n_models)
    ]
    return ModelSelectionDataset(
        name="179CLASSIFIER",
        quality=quality,
        cost=cost,
        models=models,
        user_names=[f"uci-{i}" for i in range(n_users)],
        quality_kind="simulated (calibrated to Delgado et al.)",
        cost_kind="synthetic",
    )
