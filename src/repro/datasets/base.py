"""The (users × models) quality/cost matrix abstraction.

Every experiment in the paper runs over a dataset of this shape: for
each (user, model) pair there is a *quality* (accuracy the model
reaches on the user's task) and a *cost* (execution time of training
it).  The canonical view is Figure 7 of the paper.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_matrix


@dataclass(frozen=True)
class ModelInfo:
    """Metadata for one candidate model.

    ``citations`` and ``year`` feed the MOSTCITED / MOSTRECENT
    heuristics; ``family`` groups related algorithms (e.g. all SVM
    variants in 179CLASSIFIER).
    """

    name: str
    citations: float = 0.0
    year: float = 0.0
    family: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "citations": self.citations,
            "year": self.year,
            "family": self.family,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModelInfo":
        return cls(
            name=str(data["name"]),
            citations=float(data.get("citations", 0.0)),
            year=float(data.get("year", 0.0)),
            family=str(data.get("family", "")),
        )


@dataclass
class ModelSelectionDataset:
    """A named quality/cost matrix with model metadata.

    Attributes
    ----------
    name:
        Dataset name as used in Figure 8 (e.g. ``"DEEPLEARNING"``).
    quality:
        ``(n_users, n_models)`` expected accuracies in [0, 1].
    cost:
        ``(n_users, n_models)`` strictly positive execution times.
    models:
        One :class:`ModelInfo` per column.
    user_names:
        One label per row.
    quality_kind / cost_kind:
        ``"real"``, ``"synthetic"`` or ``"simulated"`` — the provenance
        flags reported by the Figure 8 statistics table.
    """

    name: str
    quality: np.ndarray
    cost: np.ndarray
    models: List[ModelInfo] = field(default_factory=list)
    user_names: List[str] = field(default_factory=list)
    quality_kind: str = "synthetic"
    cost_kind: str = "synthetic"

    def __post_init__(self) -> None:
        self.quality = check_matrix(self.quality, "quality")
        n_users, n_models = self.quality.shape
        self.cost = check_matrix(self.cost, "cost", shape=(n_users, n_models))
        if np.any(self.cost <= 0):
            raise ValueError("all costs must be strictly positive")
        if np.any((self.quality < 0) | (self.quality > 1)):
            raise ValueError("all qualities must lie in [0, 1]")
        if not self.models:
            self.models = [ModelInfo(f"model-{j}") for j in range(n_models)]
        if len(self.models) != n_models:
            raise ValueError(
                f"got {len(self.models)} ModelInfo entries for "
                f"{n_models} model columns"
            )
        if not self.user_names:
            self.user_names = [f"user-{i}" for i in range(n_users)]
        if len(self.user_names) != n_users:
            raise ValueError(
                f"got {len(self.user_names)} user names for {n_users} users"
            )

    # ------------------------------------------------------------------
    # Shape and ground truth
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return self.quality.shape[0]

    @property
    def n_models(self) -> int:
        return self.quality.shape[1]

    def best_quality(self, user: int) -> float:
        """``a*_i`` — best achievable accuracy for ``user``."""
        return float(np.max(self.quality[user]))

    def best_qualities(self) -> np.ndarray:
        return np.max(self.quality, axis=1)

    def best_model(self, user: int) -> int:
        return int(np.argmax(self.quality[user]))

    def total_cost(self) -> float:
        """Total runtime of training every model for every user."""
        return float(np.sum(self.cost))

    def citations(self) -> np.ndarray:
        return np.array([m.citations for m in self.models])

    def years(self) -> np.ndarray:
        return np.array([m.year for m in self.models])

    # ------------------------------------------------------------------
    # Splits and subsets (the paper's 90/10 user protocol)
    # ------------------------------------------------------------------
    def subset_users(
        self, indices: Sequence[int], *, name: Optional[str] = None
    ) -> "ModelSelectionDataset":
        """New dataset restricted to the given user rows."""
        indices = [int(i) for i in indices]
        for i in indices:
            if not 0 <= i < self.n_users:
                raise IndexError(f"user index {i} out of range")
        return ModelSelectionDataset(
            name=name or self.name,
            quality=self.quality[indices].copy(),
            cost=self.cost[indices].copy(),
            models=list(self.models),
            user_names=[self.user_names[i] for i in indices],
            quality_kind=self.quality_kind,
            cost_kind=self.cost_kind,
        )

    def split_users(
        self, n_test: int, seed: SeedLike = None
    ) -> Tuple["ModelSelectionDataset", "ModelSelectionDataset"]:
        """Random (train, test) user split.

        The paper samples 10 test users and uses the rest as the
        training set whose quality vectors define the model kernel.
        """
        if not 1 <= n_test < self.n_users:
            raise ValueError(
                f"n_test must be in [1, {self.n_users - 1}], got {n_test}"
            )
        rng = RandomState(seed)
        order = rng.permutation(self.n_users)
        test_idx = sorted(int(i) for i in order[:n_test])
        train_idx = sorted(int(i) for i in order[n_test:])
        return (
            self.subset_users(train_idx, name=f"{self.name}-train"),
            self.subset_users(test_idx, name=f"{self.name}-test"),
        )

    # ------------------------------------------------------------------
    # Statistics (the Figure 8 table row)
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "n_users": self.n_users,
            "n_models": self.n_models,
            "quality": self.quality_kind,
            "cost": self.cost_kind,
            "mean_quality": float(np.mean(self.quality)),
            "mean_best_quality": float(np.mean(self.best_qualities())),
            "total_cost": self.total_cost(),
            "cost_spread": float(np.max(self.cost) / np.min(self.cost)),
        }

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "quality": self.quality.tolist(),
            "cost": self.cost.tolist(),
            "models": [m.to_dict() for m in self.models],
            "user_names": list(self.user_names),
            "quality_kind": self.quality_kind,
            "cost_kind": self.cost_kind,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModelSelectionDataset":
        return cls(
            name=str(data["name"]),
            quality=np.asarray(data["quality"], dtype=float),
            cost=np.asarray(data["cost"], dtype=float),
            models=[ModelInfo.from_dict(m) for m in data.get("models", [])],
            user_names=list(data.get("user_names", [])),
            quality_kind=str(data.get("quality_kind", "synthetic")),
            cost_kind=str(data.get("cost_kind", "synthetic")),
        )

    def save_json(self, path: Union[str, Path]) -> None:
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load_json(cls, path: Union[str, Path]) -> "ModelSelectionDataset":
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelSelectionDataset({self.name!r}, "
            f"{self.n_users} users x {self.n_models} models)"
        )
