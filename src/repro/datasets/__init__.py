"""Datasets for the evaluation (Section 5.1, Figure 8).

Six datasets, mirroring the paper's table:

==================  =======  ========  =========  =========
Dataset             # Users  # Models  Quality    Cost
==================  =======  ========  =========  =========
DEEPLEARNING        22       8         real*      real*
179CLASSIFIER       121      179       real*      synthetic
SYN(0.01, 0.1)      200      100       synthetic  synthetic
SYN(0.01, 1.0)      200      100       synthetic  synthetic
SYN(0.5, 0.1)       200      100       synthetic  synthetic
SYN(0.5, 1.0)       200      100       synthetic  synthetic
==================  =======  ========  =========  =========

(*) The paper's "real" matrices come from the ease.ml production log
and from Delgado et al.'s published benchmark; neither is available
offline, so :mod:`repro.datasets.deeplearning` and
:mod:`repro.datasets.classifier179` generate *calibrated simulations*
with the same shape (marginal difficulty spread, model-ranking
correlation, cost distribution).  DESIGN.md §5 documents the
substitution in detail.
"""

from repro.datasets.base import ModelInfo, ModelSelectionDataset
from repro.datasets.classifier179 import load_179classifier
from repro.datasets.deeplearning import (
    DEEP_ARCHITECTURES,
    load_deeplearning,
)
from repro.datasets.synthetic import (
    SyntheticSpec,
    generate_full_synthetic,
    generate_syn,
    load_all_syn,
)

__all__ = [
    "ModelInfo",
    "ModelSelectionDataset",
    "load_deeplearning",
    "DEEP_ARCHITECTURES",
    "load_179classifier",
    "SyntheticSpec",
    "generate_full_synthetic",
    "generate_syn",
    "load_all_syn",
    "load_benchmark_suite",
]


def load_benchmark_suite(seed: int = 0):
    """All six paper datasets, keyed by their Figure 8 names."""
    suite = {
        "DEEPLEARNING": load_deeplearning(seed=seed),
        "179CLASSIFIER": load_179classifier(seed=seed),
    }
    suite.update(load_all_syn(seed=seed))
    return suite
