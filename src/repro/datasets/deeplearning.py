"""Calibrated simulation of the DEEPLEARNING trace (Section 5.1).

The paper's DEEPLEARNING dataset is the ease.ml production log: 22
users (image-classification datasets) × 8 CNN architectures, each
(user, model) pair trained with Adam, a learning-rate grid search and
100 epochs on the ETH GPU cluster.  That log is not public and this
environment has neither GPUs nor network access, so — per the
reproduction brief — we substitute a *calibrated simulator* whose
matrix has the same structure the experiments depend on:

* architecture capabilities and training-cost ratios follow the public
  literature (rough ImageNet-era accuracy ordering; cost from
  parameter/FLOP counts on a TITAN X);
* per-user task difficulty varies widely (some users sit near ceiling
  accuracy — the paper's 0.99-accuracy anecdote — others are hard);
* small datasets make big networks overfit, creating the crossovers
  that give cost-awareness its edge ("models exist that are
  significantly faster … and have a quality that is only a little bit
  worse than the best slower model");
* costs are heavy-tailed across users (dataset size) and models.

Citation counts (Google Scholar, circa mid-2017) and publication years
drive the MOSTCITED / MOSTRECENT heuristics exactly as in Section 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datasets.base import ModelInfo, ModelSelectionDataset
from repro.utils.rng import RandomState, SeedLike


@dataclass(frozen=True)
class Architecture:
    """Prior knowledge about one CNN architecture."""

    name: str
    year: int
    citations: int
    #: Baseline accuracy edge over AlexNet on a mid-sized dataset.
    capability: float
    #: Training cost relative to AlexNet (parameter/FLOP-derived).
    relative_cost: float
    #: How much accuracy the model loses on *small* datasets
    #: (overfitting tendency of high-capacity nets).
    overfit_penalty: float


#: The eight architectures ease.ml matches to image-classification jobs,
#: in the order the paper lists them (Section 5.1).
DEEP_ARCHITECTURES: Tuple[Architecture, ...] = (
    Architecture("NIN", 2013, 2600, 0.050, 1.3, 0.01),
    Architecture("GoogLeNet", 2014, 10500, 0.085, 2.6, 0.06),
    Architecture("ResNet-50", 2015, 8500, 0.110, 4.8, 0.18),
    Architecture("AlexNet", 2012, 25500, 0.000, 1.0, 0.01),
    Architecture("BN-AlexNet", 2015, 6800, 0.025, 1.1, 0.02),
    Architecture("ResNet-18", 2015, 8400, 0.095, 2.1, 0.08),
    Architecture("VGG-16", 2014, 18200, 0.060, 6.2, 0.14),
    Architecture("SqueezeNet", 2016, 850, 0.015, 0.8, 0.01),
)


def load_deeplearning(
    *,
    n_users: int = 22,
    seed: SeedLike = 0,
    noise_scale: float = 0.025,
) -> ModelSelectionDataset:
    """Generate the calibrated 22 × 8 DEEPLEARNING matrix.

    Per user ``i`` we draw a task difficulty ``base_i`` (best-case
    accuracy scale), a dataset-size factor ``size_i ∈ [0, 1]`` (small
    datasets punish high-capacity nets and train faster) and a
    sensitivity ``sens_i`` to architecture choice.  Quality is

    ``q_{i,j} = clip(base_i + sens_i·capability_j
    − (1 − size_i)·overfit_j + ε, 0, 1)``

    and cost is ``relative_cost_j · duration_i`` with a log-normal
    jitter, where ``duration_i`` grows with dataset size.
    """
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    rng = RandomState(seed)
    n_models = len(DEEP_ARCHITECTURES)

    capability = np.array([a.capability for a in DEEP_ARCHITECTURES])
    overfit = np.array([a.overfit_penalty for a in DEEP_ARCHITECTURES])
    rel_cost = np.array([a.relative_cost for a in DEEP_ARCHITECTURES])

    # Task difficulty: a wide spread, including near-ceiling users
    # (the 0.99-accuracy anecdote of the introduction).
    base = rng.beta(6.0, 2.0, n_users) * 0.55 + 0.40  # in [0.40, 0.95]
    size = rng.uniform(0.0, 1.0, n_users)  # dataset size factor
    sens = rng.uniform(0.7, 1.3, n_users)  # architecture sensitivity

    noise = rng.normal(0.0, noise_scale, (n_users, n_models))
    quality = np.clip(
        base[:, None]
        + sens[:, None] * capability[None, :]
        - (1.0 - size[:, None]) * overfit[None, :]
        + noise,
        0.0,
        1.0,
    )

    # Costs: hours on the shared GPU pool.  Bigger datasets train
    # longer; per-pair log-normal jitter models convergence variance
    # from the learning-rate grid search.
    duration = 1.0 + 5.0 * size  # 1–6 "hours" of AlexNet-equivalent
    jitter = np.exp(rng.normal(0.0, 0.2, (n_users, n_models)))
    cost = duration[:, None] * rel_cost[None, :] * jitter

    models = [
        ModelInfo(
            name=a.name,
            citations=float(a.citations),
            year=float(a.year),
            family="cnn",
        )
        for a in DEEP_ARCHITECTURES
    ]
    return ModelSelectionDataset(
        name="DEEPLEARNING",
        quality=quality,
        cost=cost,
        models=models,
        user_names=[f"dl-user-{i}" for i in range(n_users)],
        quality_kind="simulated (calibrated to the paper's trace)",
        cost_kind="simulated (calibrated to the paper's trace)",
    )


def architecture_names() -> List[str]:
    """Names of the eight architectures, paper order."""
    return [a.name for a in DEEP_ARCHITECTURES]
