"""The prediction cache: LRU over canonical input rows.

Inference is read-heavy and repetitive — the same feature vector asks
the same model the same question until a promotion changes the model.
The cache keys each answer by ``(app, model_version,
canonical-row-bytes)``: the version stamp makes stale entries
unreachable the instant a better model is promoted, and an explicit
:meth:`PredictionCache.invalidate_app` (wired to the gateway's
promotion hook) reclaims their memory instead of waiting for LRU
pressure.

Canonical row bytes are the C-order ``float64`` buffer of the row with
negative zeros collapsed (``-0.0 + 0.0 == 0.0``), so two requests that
mean the same point hit the same entry regardless of the JSON shape
they arrived in.  Non-finite rows are rejected upstream (the gateway's
vectorized validator), so NaN's ``x != x`` identity never poisons a
key.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["PredictionCache", "canonical_row_bytes"]


def canonical_row_bytes(row: np.ndarray) -> bytes:
    """The canonical byte form of one input row (see module docstring)."""
    row = np.ascontiguousarray(row, dtype=np.float64)
    # +0.0 collapses -0.0 to 0.0 without touching any other value.
    return (row + 0.0).tobytes()


class PredictionCache:
    """A thread-safe LRU of ``(app, model_version, row) -> prediction``.

    ``capacity`` counts rows (one prediction per entry).  A capacity of
    zero disables the cache entirely (every lookup misses, nothing is
    stored) so callers never need a null-object variant.
    """

    def __init__(self, capacity: int, metrics=None) -> None:
        self.capacity = max(0, int(capacity))
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, str, bytes], int]" = (
            OrderedDict()
        )
        if metrics is not None:
            self._m_hits = metrics.counter(
                "infer_cache_hits_total",
                "Inference rows answered from the prediction cache.",
                ["app"],
            )
            self._m_misses = metrics.counter(
                "infer_cache_misses_total",
                "Inference rows that missed the prediction cache.",
                ["app"],
            )
            self._m_size = metrics.gauge(
                "infer_cache_size",
                "Predictions currently held by the cache.",
            )
            self._m_invalidations = metrics.counter(
                "infer_cache_invalidations_total",
                "Entries dropped by model-promotion invalidation.",
            )
        else:  # pragma: no cover - exercised via NULL registry anyway
            self._m_hits = self._m_misses = None
            self._m_size = self._m_invalidations = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- the batch surface (one lock round-trip per request) -----------
    def lookup(
        self, app: str, version: str, X: np.ndarray
    ) -> Tuple[Dict[int, int], List[int], List[bytes]]:
        """Split a ``(B, n)`` batch into cached answers and miss indices.

        Returns ``(hits, misses, keys)`` where ``hits`` maps row index
        -> cached prediction, ``misses`` lists the indices that must go
        to the model, and ``keys`` holds each row's canonical bytes
        (pass them back to :meth:`store` so the miss rows are hashed
        only once).  Hit entries are refreshed to most-recently-used.
        """
        if self.capacity == 0:
            return {}, list(range(len(X))), []
        keys = [canonical_row_bytes(row) for row in X]
        hits: Dict[int, int] = {}
        misses: List[int] = []
        with self._lock:
            for i, row_key in enumerate(keys):
                key = (app, version, row_key)
                if key in self._entries:
                    self._entries.move_to_end(key)
                    hits[i] = self._entries[key]
                else:
                    misses.append(i)
        if self._m_hits is not None:
            if hits:
                self._m_hits.labels(app).inc(len(hits))
            if misses:
                self._m_misses.labels(app).inc(len(misses))
        return hits, misses, keys

    def store(
        self,
        app: str,
        version: str,
        keys: Sequence[bytes],
        indices: Sequence[int],
        predictions: Sequence[int],
    ) -> None:
        """Insert the freshly-predicted miss rows (``keys[i]`` for each
        miss index, paired positionally with ``predictions``)."""
        if self.capacity == 0:
            return
        with self._lock:
            for i, prediction in zip(indices, predictions):
                key = (app, version, keys[i])
                self._entries[key] = int(prediction)
                self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            size = len(self._entries)
        if self._m_size is not None:
            self._m_size.set(size)

    def invalidate_app(self, app: str) -> int:
        """Drop every entry for ``app`` (model promotion); returns the
        number of entries reclaimed."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == app]
            for key in stale:
                del self._entries[key]
            size = len(self._entries)
        if stale and self._m_invalidations is not None:
            self._m_invalidations.inc(len(stale))
            self._m_size.set(size)
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
        if self._m_size is not None:
            self._m_size.set(0)
