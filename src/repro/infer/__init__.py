"""The inference data plane (ROADMAP item 2).

``repro.infer`` turns the serving path's per-row Python loop into a
real data plane: vectorized validation and predict, cross-request
coalescing behind an adaptive batching window, per-tenant token-bucket
admission, and an LRU prediction cache invalidated on model promotion.
The gateway owns one :class:`InferPlane`; everything else in the
package is its machinery.
"""

from repro.infer.batching import AdaptiveBatchController, BatchQueue
from repro.infer.cache import PredictionCache, canonical_row_bytes
from repro.infer.limits import TokenBucket
from repro.infer.plane import InferPlane, InferPlaneConfig, parse_batch_window

__all__ = [
    "AdaptiveBatchController",
    "BatchQueue",
    "InferPlane",
    "InferPlaneConfig",
    "PredictionCache",
    "TokenBucket",
    "canonical_row_bytes",
    "parse_batch_window",
]
