"""The inference data plane: cache -> admission -> coalescing queue.

One :class:`InferPlane` hangs off the service gateway and owns, per
app, a :class:`~repro.infer.batching.BatchQueue` (with an adaptive
controller tuned to the owning tenant's SLO objective) plus one shared
:class:`~repro.infer.cache.PredictionCache` and per-tenant
:class:`~repro.infer.limits.TokenBucket` rate limits.  The gateway's
``_infer`` hands it validated ``(B, n)`` batches; everything below —
hit splitting, window waits, the single vectorized predict under the
gateway lock — happens here.

The plane is configured once at construction and reconfigured whole
(:meth:`ServiceGateway.configure_infer_plane`) rather than mutated
knob-by-knob, so a running server's queues never see half-applied
settings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from threading import Lock
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import ApiError, ApiErrorCode
from repro.infer.batching import AdaptiveBatchController, BatchQueue
from repro.infer.cache import PredictionCache
from repro.infer.limits import TokenBucket
from repro.obs.tracing import add_span

__all__ = ["InferPlane", "InferPlaneConfig", "parse_batch_window"]

#: Rows-per-flush histogram bounds (powers of two; flushes are small).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
#: Requests coalesced per flush.
QUEUE_DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64)
#: Coalescing-window bounds (sub-millisecond matters here).
WINDOW_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
)


@dataclass(frozen=True)
class InferPlaneConfig:
    """Operator-facing knobs for the inference data plane."""

    #: ``"adaptive"`` (GACER-style controller), ``"fixed"`` (constant
    #: window), or ``"off"`` (vectorized predict, no cross-request
    #: coalescing).
    mode: str = "adaptive"
    #: Fixed-mode window, and the adaptive controller's starting point.
    window: float = 0.002
    #: Ceiling the adaptive controller may widen the window to.
    max_window: float = 0.02
    #: Early-flush row target (adaptive start / fixed value).
    max_batch: int = 64
    #: Prediction-cache capacity in rows; 0 disables the cache.
    cache_rows: int = 4096
    #: Default per-tenant rate limit (rows/second) applied when the
    #: tenant's quota carries none; None = unlimited.
    default_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in ("adaptive", "fixed", "off"):
            raise ValueError(
                f"mode must be adaptive/fixed/off, got {self.mode!r}"
            )
        if self.window < 0 or self.max_window < self.window:
            raise ValueError(
                "need 0 <= window <= max_window, got "
                f"{self.window}/{self.max_window}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.cache_rows < 0:
            raise ValueError(f"cache_rows must be >= 0, got {self.cache_rows}")


def parse_batch_window(text: str) -> Tuple[str, float]:
    """Parse a ``--infer-batch-window`` value into ``(mode, window)``.

    Accepts ``"off"``, ``"adaptive"``, or a window in seconds (fixed
    mode); raises ``ValueError`` with a pointed message otherwise.
    """
    text = str(text).strip().lower()
    if text in ("off", "none", "0"):
        return "off", 0.0
    if text == "adaptive":
        return "adaptive", InferPlaneConfig.window
    try:
        window = float(text)
    except ValueError:
        raise ValueError(
            f"--infer-batch-window must be 'off', 'adaptive', or a "
            f"window in seconds, got {text!r}"
        ) from None
    if not 0.0 < window <= 1.0:
        raise ValueError(
            f"a fixed batch window must be in (0, 1] seconds, got {window}"
        )
    return "fixed", window


class InferPlane:
    """Per-gateway inference data plane (see module docstring)."""

    def __init__(
        self,
        *,
        config: Optional[InferPlaneConfig] = None,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or InferPlaneConfig()
        self.clock = clock
        self.cache = PredictionCache(
            self.config.cache_rows, metrics=metrics
        )
        self._lock = Lock()
        self._queues: Dict[str, BatchQueue] = {}
        #: tenant -> (bucket, rate, burst); rebuilt when the quota's
        #: rate changes (set_quota takes effect on the next request).
        self._buckets: Dict[str, Tuple[TokenBucket, float, float]] = {}
        if metrics is not None:
            self._m_batch_size = metrics.histogram(
                "infer_batch_size",
                "Rows per coalesced predict flush.",
                buckets=BATCH_SIZE_BUCKETS,
            )
            self._m_queue_depth = metrics.histogram(
                "infer_queue_depth",
                "Requests coalesced into one flush.",
                buckets=QUEUE_DEPTH_BUCKETS,
            )
            self._m_window = metrics.histogram(
                "infer_batch_window_seconds",
                "Coalescing window in force at each flush.",
                buckets=WINDOW_BUCKETS,
            )
            self._m_flush_seconds = metrics.histogram(
                "infer_batch_seconds",
                "Latency of one vectorized predict flush (the "
                "adaptive controller's input).",
            )
            self._m_rate_limited = metrics.counter(
                "infer_rate_limited_total",
                "Infer requests refused by the per-tenant token "
                "bucket, by tenant.",
                ["tenant"],
            )
        else:
            self._m_batch_size = self._m_queue_depth = None
            self._m_window = self._m_flush_seconds = None
            self._m_rate_limited = None

    # -- admission -----------------------------------------------------
    def admit(self, tenant: str, rate_limit, rows: int) -> None:
        """Charge ``rows`` against the tenant's token bucket.

        ``rate_limit`` is ``(rows_per_second, burst_rows)`` off the
        tenant's quota (either may be None).  Raises ``QUOTA_EXCEEDED``
        with a ``retry_after`` detail — the HTTP frontends turn that
        into a 429 with a ``Retry-After`` header.
        """
        rate, burst = rate_limit
        if rate is None:
            rate = self.config.default_rate
        if rate is None:
            return
        bucket = self._bucket(tenant, float(rate), burst)
        wait = bucket.try_acquire(rows)
        if wait > 0.0:
            if self._m_rate_limited is not None:
                self._m_rate_limited.labels(tenant).inc()
            raise ApiError(
                ApiErrorCode.QUOTA_EXCEEDED,
                f"tenant {tenant!r} exceeded its inference rate "
                f"({rate:g} rows/s); retry in {wait:.3f}s",
                rate_rows_per_second=float(rate),
                rows=int(rows),
                retry_after=round(float(wait), 3),
            )

    def _bucket(
        self, tenant: str, rate: float, burst
    ) -> TokenBucket:
        burst = float(burst) if burst is not None else None
        with self._lock:
            held = self._buckets.get(tenant)
            if held is not None and held[1] == rate and held[2] == burst:
                return held[0]
            bucket = TokenBucket(rate, burst, clock=self.clock)
            self._buckets[tenant] = (bucket, rate, burst)
            return bucket

    # -- the predict path ----------------------------------------------
    def predict(
        self,
        app: str,
        X: np.ndarray,
        execute: Callable[[np.ndarray], Tuple[np.ndarray, Dict[str, Any]]],
        *,
        peek: Optional[Callable[[], Tuple[Any, Any]]] = None,
        objective_ms: float = 1000.0,
    ) -> Tuple[np.ndarray, Dict[str, Any], int]:
        """Answer one validated ``(B, n)`` batch.

        ``execute`` runs the vectorized predict (under the gateway
        lock) and returns ``(predictions, meta)`` with ``model`` /
        ``model_version`` in ``meta``; ``peek`` reads the currently
        served ``(model, model_version)`` without a lock, for cache
        keys.  Returns ``(predictions, meta, rows_from_cache)``.
        """
        started = time.perf_counter()
        version0 = model0 = None
        hits: Dict[int, int] = {}
        keys = None
        if self.cache.capacity and peek is not None:
            model0, version0 = peek()
            if version0 is not None:
                hits, miss_idx, keys = self.cache.lookup(
                    app, version0, X
                )
                if not miss_idx:
                    predictions = np.fromiter(
                        (hits[i] for i in range(len(X))),
                        dtype=np.int64,
                        count=len(X),
                    )
                    meta = {"model": model0, "model_version": version0}
                    add_span(
                        "batch.coalesce",
                        started,
                        time.perf_counter(),
                        rows=int(len(X)),
                        cached=int(len(X)),
                    )
                    return predictions, meta, len(X)
                X_miss = X[miss_idx]
            else:
                miss_idx = list(range(len(X)))
                X_miss = X
        else:
            miss_idx = list(range(len(X)))
            X_miss = X

        if self.config.mode == "off":
            flush_started = time.perf_counter()
            miss_predictions, meta = execute(X_miss)
            self._observe_flush(
                rows=len(X_miss),
                requests=1,
                window=0.0,
                seconds=time.perf_counter() - flush_started,
            )
            meta = dict(meta)
        else:
            queue = self._queue_for(app, execute, objective_ms)
            miss_predictions, meta = queue.submit(X_miss)

        version = meta.get("model_version")
        if hits and version != version0:
            # The model was promoted between the cache read and the
            # flush: the hit rows answered with the old model.  Re-run
            # the whole batch against the new one — correctness over
            # the (rare) double predict.
            miss_predictions, meta = execute(X)
            meta = dict(meta)
            hits, miss_idx = {}, list(range(len(X)))
            version = meta.get("model_version")
        elif keys is not None and version is not None:
            self.cache.store(
                app, version, keys, miss_idx, miss_predictions
            )

        predictions = np.empty(len(X), dtype=np.int64)
        predictions[miss_idx] = np.asarray(
            miss_predictions, dtype=np.int64
        )
        for i, value in hits.items():
            predictions[i] = value
        add_span(
            "batch.coalesce",
            started,
            time.perf_counter(),
            rows=int(len(X)),
            cached=int(len(hits)),
            batch_rows=int(meta.get("batch_rows", len(miss_idx))),
            batch_requests=int(meta.get("batch_requests", 1)),
        )
        return predictions, meta, len(hits)

    def _queue_for(
        self, app: str, execute, objective_ms: float
    ) -> BatchQueue:
        queue = self._queues.get(app)
        if queue is not None:
            return queue
        with self._lock:
            queue = self._queues.get(app)
            if queue is None:
                controller = None
                if self.config.mode == "adaptive":
                    controller = AdaptiveBatchController(
                        objective_ms=objective_ms,
                        window=self.config.window,
                        max_window=self.config.max_window,
                        max_batch=self.config.max_batch,
                    )
                queue = BatchQueue(
                    execute,
                    window=self.config.window,
                    max_batch=self.config.max_batch,
                    controller=controller,
                    on_flush=self._observe_flush,
                )
                self._queues[app] = queue
            return queue

    def _observe_flush(
        self, *, rows: int, requests: int, window: float, seconds: float
    ) -> None:
        if self._m_batch_size is None:
            return
        self._m_batch_size.observe(rows)
        self._m_queue_depth.observe(requests)
        self._m_window.observe(window)
        self._m_flush_seconds.observe(seconds)

    # -- promotion hook ------------------------------------------------
    def invalidate_app(self, app: str) -> int:
        """Drop the app's cached predictions (model promotion)."""
        return self.cache.invalidate_app(app)
