"""Per-tenant admission control for the inference data plane.

A classic token bucket, counted in *rows* (a 64-row ``infer_batch``
spends 64 tokens): ``rate`` tokens refill per second up to ``burst``.
A request that cannot be covered right now is refused outright — the
gateway surfaces that as ``QUOTA_EXCEEDED`` (HTTP 429) with a
``retry_after`` hint computed from the refill rate, so well-behaved
SDKs back off for exactly as long as the deficit takes to refill
instead of hammering the endpoint.

The bucket never *parks* a request: admission control exists to keep
one tenant's flood from growing every other tenant's coalescing queue,
and a parked request would occupy the very worker thread the plane is
trying to protect.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

__all__ = ["TokenBucket"]


class TokenBucket:
    """Thread-safe token bucket (tokens are inference rows)."""

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        #: Default burst: one second's worth of rows, but never less
        #: than a single row (a rate of 0.5 must still admit one).
        self.burst = float(burst if burst is not None else max(rate, 1.0))
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        self.clock = clock
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._refilled = clock()

    def try_acquire(self, n: int = 1) -> float:
        """Spend ``n`` tokens; returns 0.0 on success, else the number
        of seconds until the deficit refills (the Retry-After hint).

        A request larger than the whole burst can never succeed; its
        hint is the time to refill the full shortfall from empty, and
        callers are expected to split the batch instead of waiting.
        """
        n = max(1, int(n))
        with self._lock:
            now = self.clock()
            self._tokens = min(
                self.burst,
                self._tokens + (now - self._refilled) * self.rate,
            )
            self._refilled = now
            if self._tokens >= n:
                self._tokens -= n
                return 0.0
            return (n - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token balance (refilled to now); for tests/metrics."""
        with self._lock:
            now = self.clock()
            self._tokens = min(
                self.burst,
                self._tokens + (now - self._refilled) * self.rate,
            )
            self._refilled = now
            return self._tokens
