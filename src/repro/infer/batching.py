"""Cross-request coalescing: the adaptive window and the batch queue.

Concurrent infer requests for one app park briefly in a
:class:`BatchQueue`; the first arrival becomes the *leader*, waits up
to one coalescing window for followers, then executes every parked
row as a single vectorized predict and distributes the per-request
slices.  While a leader executes, the next arrival becomes the next
leader — window waits pipeline with predicts, so the queue never adds
more than one window of latency.

The window itself is regulated GACER-style (arXiv 2304.11745) by
:class:`AdaptiveBatchController`: widen the window and the early-flush
row target while the observed p99 of ``infer_batch_seconds`` has
headroom against the tenant's SLO latency objective *and* flushes are
actually coalescing; narrow multiplicatively as p99 approaches the
bound; decay the window toward zero when flushes are singletons (an
idle app must not tax every request with a pointless wait).  Even at
window zero a loaded queue still batches — arrivals that land while a
leader is executing convoy into the next flush, the same group-commit
effect the journal uses.

``max_batch`` is the early-flush trigger, not a hard cap: a flush
always takes *every* parked entry (a partial take would strand the
remainder with no leader thread to flush it), so one oversized client
batch simply flushes alone.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["AdaptiveBatchController", "BatchQueue"]

#: A follower gives up after this long parked on its flush event; the
#: leader distributing results (or errors) makes this unreachable in
#: practice — it guards against a leader thread dying mid-flush.
FOLLOWER_TIMEOUT = 60.0

#: The window a grow step starts from once decay reached zero.
_REGROW_STEP = 0.0005

#: Windows below this flush immediately (a sub-50µs sleep is all
#: scheduler jitter, no coalescing value).
_WINDOW_FLOOR = 5e-5


class AdaptiveBatchController:
    """Regulates (window, max_batch) from observed flush latency.

    Parameters
    ----------
    objective_ms:
        The tenant's SLO latency bound (``obs/slo.py`` objective).  The
        controller keeps ``window + p99(flush)`` comfortably inside it:
        above ``shrink_at`` (default 50%) of the bound it halves both
        knobs; below ``grow_at`` (default 20%) — with real coalescing
        happening — it multiplies them back up.
    window / max_batch:
        Starting point; also the fixed values when the controller is
        bypassed (``mode="fixed"``).
    """

    def __init__(
        self,
        *,
        objective_ms: float = 1000.0,
        window: float = 0.002,
        max_window: float = 0.02,
        max_batch: int = 64,
        min_batch: int = 8,
        max_batch_cap: int = 512,
        period: int = 16,
        sample: int = 128,
        shrink_at: float = 0.5,
        grow_at: float = 0.2,
    ) -> None:
        self.objective_ms = float(objective_ms)
        self.window = float(window)
        self.max_window = float(max_window)
        self.max_batch = int(max_batch)
        self.min_batch = int(min_batch)
        self.max_batch_cap = int(max_batch_cap)
        self.period = max(1, int(period))
        self.shrink_at = float(shrink_at)
        self.grow_at = float(grow_at)
        self._lock = threading.Lock()
        self._flush_seconds: deque = deque(maxlen=int(sample))
        self._flush_requests: deque = deque(maxlen=int(sample))
        self._since_adjust = 0
        #: (reason, window, max_batch) history of adjustments; bounded,
        #: for tests and the bench report.
        self.adjustments: deque = deque(maxlen=64)

    def observe(self, flush_seconds: float, n_requests: int) -> None:
        """Feed one flush; every ``period`` flushes, adjust the knobs."""
        with self._lock:
            self._flush_seconds.append(float(flush_seconds))
            self._flush_requests.append(int(n_requests))
            self._since_adjust += 1
            if self._since_adjust < self.period:
                return
            self._since_adjust = 0
            self._adjust()

    def _adjust(self) -> None:
        latency_ms = (
            self.window
            + float(np.quantile(np.asarray(self._flush_seconds), 0.99))
        ) * 1000.0
        coalescing = (
            sum(self._flush_requests) / len(self._flush_requests)
        ) > 1.05
        if latency_ms > self.shrink_at * self.objective_ms:
            # p99 is eating the SLO budget: back off both knobs.
            self.window = (
                self.window / 2.0
                if self.window / 2.0 >= _WINDOW_FLOOR
                else 0.0
            )
            self.max_batch = max(self.min_batch, self.max_batch // 2)
            self.adjustments.append(
                ("shrink", self.window, self.max_batch)
            )
        elif not coalescing:
            # Nothing to coalesce: decay the window so sequential
            # traffic stops paying for an empty wait.
            if self.window > 0.0:
                self.window = (
                    self.window / 2.0
                    if self.window / 2.0 >= _WINDOW_FLOOR
                    else 0.0
                )
                self.adjustments.append(
                    ("decay", self.window, self.max_batch)
                )
        elif latency_ms < self.grow_at * self.objective_ms:
            # Real coalescing with latency headroom: push throughput.
            self.window = min(
                self.max_window, max(self.window * 1.5, _REGROW_STEP)
            )
            self.max_batch = min(self.max_batch_cap, self.max_batch * 2)
            self.adjustments.append(("grow", self.window, self.max_batch))


class _Entry:
    """One parked request: its rows, and the flush's answer for them."""

    __slots__ = ("rows", "result", "meta", "error", "ready")

    def __init__(self, rows: np.ndarray) -> None:
        self.rows = rows
        self.result: Optional[np.ndarray] = None
        self.meta: Optional[Dict[str, Any]] = None
        self.error: Optional[BaseException] = None
        self.ready = threading.Event()


class BatchQueue:
    """Leader/follower coalescing queue for one app.

    ``execute`` is the vectorized predict: ``execute(X) ->
    (predictions, meta)`` where ``meta`` is a dict (at least ``model``
    and ``model_version``); the queue adds ``batch_rows`` /
    ``batch_requests`` before handing each request its slice.
    """

    def __init__(
        self,
        execute: Callable[[np.ndarray], Tuple[np.ndarray, Dict[str, Any]]],
        *,
        window: float = 0.0,
        max_batch: int = 64,
        controller: Optional[AdaptiveBatchController] = None,
        on_flush: Optional[Callable[..., None]] = None,
    ) -> None:
        self._execute = execute
        self._fixed_window = float(window)
        self._fixed_max_batch = int(max_batch)
        self.controller = controller
        self._on_flush = on_flush
        self._lock = threading.Lock()
        self._entries: List[_Entry] = []
        self._pending_rows = 0
        self._leader_active = False
        self._full = threading.Event()

    @property
    def window(self) -> float:
        c = self.controller
        return c.window if c is not None else self._fixed_window

    @property
    def max_batch(self) -> int:
        c = self.controller
        return c.max_batch if c is not None else self._fixed_max_batch

    def submit(
        self, X: np.ndarray
    ) -> Tuple[np.ndarray, Dict[str, Any]]:
        """Park ``X`` (one request's rows) and return its predictions.

        Called from the request's own thread (both HTTP frontends give
        each infer request one); the thread either leads the flush or
        parks until a leader answers for it.
        """
        entry = _Entry(X)
        with self._lock:
            leader = not self._leader_active
            if leader:
                self._leader_active = True
                self._full.clear()
            self._entries.append(entry)
            self._pending_rows += len(X)
            if not leader and self._pending_rows >= self.max_batch:
                self._full.set()  # enough rows: end the window early
        if not leader:
            if not entry.ready.wait(timeout=FOLLOWER_TIMEOUT):
                raise RuntimeError(
                    "coalesced infer batch was never flushed (leader "
                    "thread lost); retry the request"
                )
            if entry.error is not None:
                raise entry.error
            meta = dict(entry.meta or {})
            return entry.result, meta
        return self._lead(entry)

    def _lead(
        self, own: _Entry
    ) -> Tuple[np.ndarray, Dict[str, Any]]:
        window = self.window
        if window > 0.0:
            with self._lock:
                full = self._pending_rows >= self.max_batch
            if not full:
                self._full.wait(timeout=window)
        with self._lock:
            batch = self._entries
            self._entries = []
            self._pending_rows = 0
            # From here on the next arrival leads the next flush; its
            # window wait overlaps this flush's predict.
            self._leader_active = False
        started = time.perf_counter()
        try:
            if len(batch) == 1:
                X_all = batch[0].rows
            else:
                X_all = np.concatenate([e.rows for e in batch], axis=0)
            predictions, meta = self._execute(X_all)
        except BaseException as exc:
            for e in batch:
                e.error = exc
                e.ready.set()
            raise
        duration = time.perf_counter() - started
        meta = dict(meta)
        meta["batch_rows"] = int(len(X_all))
        meta["batch_requests"] = len(batch)
        meta["window"] = window
        if self.controller is not None:
            self.controller.observe(duration, len(batch))
        if self._on_flush is not None:
            self._on_flush(
                rows=len(X_all),
                requests=len(batch),
                window=window,
                seconds=duration,
            )
        offset = 0
        for e in batch:
            k = len(e.rows)
            e.result = predictions[offset:offset + k]
            e.meta = meta
            e.ready.set()
            offset += k
        return own.result, dict(meta)
