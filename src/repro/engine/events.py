"""Typed event log for simulation runs.

Every notable simulator action (job submitted / started / finished,
model returned to a user, scheduler switches strategy, …) is appended
as an :class:`Event`; experiments and tests query the log instead of
scraping stdout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Union,
)


class EventKind(str, Enum):
    """The vocabulary of simulator events."""

    JOB_SUBMITTED = "job_submitted"
    JOB_STARTED = "job_started"
    JOB_FINISHED = "job_finished"
    JOB_FAILED = "job_failed"
    JOB_PREEMPTED = "job_preempted"
    JOB_REQUEUED = "job_requeued"
    USER_ARRIVED = "user_arrived"
    USER_DEPARTED = "user_departed"
    MODEL_RETURNED = "model_returned"
    USER_PICKED = "user_picked"
    STRATEGY_SWITCHED = "strategy_switched"
    FEED = "feed"
    REFINE = "refine"
    INFER = "infer"
    CUSTOM = "custom"


@dataclass(frozen=True)
class Event:
    """One timestamped event with a free-form payload."""

    time: float
    kind: EventKind
    payload: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event(t={self.time:.4g}, {self.kind.value}, {self.payload})"


class EventLog:
    """Append-only, time-ordered event store."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def append(
        self,
        time: float,
        kind: EventKind,
        **payload: Any,
    ) -> Event:
        """Record an event; time must not precede the last event."""
        if self._events and time < self._events[-1].time - 1e-12:
            raise ValueError(
                f"event at t={time} precedes the last event at "
                f"t={self._events[-1].time}"
            )
        event = Event(float(time), EventKind(kind), dict(payload))
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def of_kind(self, kind: EventKind) -> List[Event]:
        """All events of one kind, in time order."""
        return self.filter(kind)

    def filter(
        self,
        kind: Union[EventKind, str, Iterable[EventKind], None] = None,
        *,
        predicate: Optional[Callable[[Event], bool]] = None,
        **payload: Any,
    ) -> List[Event]:
        """Events matching a kind (or several), payload values and predicate.

        ``kind`` may be a single :class:`EventKind` (or its string
        value) or an iterable of them; keyword arguments must match the
        event payload exactly (``log.filter(EventKind.JOB_FINISHED,
        user=3)``).  The trace tooling in :mod:`repro.runtime.trace`
        uses this to slice execution logs before serialising them.
        """
        if kind is None:
            kinds = None
        elif isinstance(kind, (EventKind, str)):
            kinds = {EventKind(kind)}
        else:
            kinds = {EventKind(k) for k in kind}
        out = []
        for event in self._events:
            if kinds is not None and event.kind not in kinds:
                continue
            if any(
                key not in event.payload or event.payload[key] != value
                for key, value in payload.items()
            ):
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def between(
        self, start: float, end: float, kind: Optional[EventKind] = None
    ) -> List[Event]:
        """Events with ``start <= time < end``, optionally filtered."""
        out = [e for e in self._events if start <= e.time < end]
        if kind is not None:
            kind = EventKind(kind)
            out = [e for e in out if e.kind is kind]
        return out

    def last(self, kind: Optional[EventKind] = None) -> Optional[Event]:
        """Most recent event (of a kind), or ``None``."""
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.kind is EventKind(kind):
                return event
        return None
