"""Typed event log for simulation runs.

Every notable simulator action (job submitted / started / finished,
model returned to a user, scheduler switches strategy, …) is appended
as an :class:`Event`; experiments and tests query the log instead of
scraping stdout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional


class EventKind(str, Enum):
    """The vocabulary of simulator events."""

    JOB_SUBMITTED = "job_submitted"
    JOB_STARTED = "job_started"
    JOB_FINISHED = "job_finished"
    MODEL_RETURNED = "model_returned"
    USER_PICKED = "user_picked"
    STRATEGY_SWITCHED = "strategy_switched"
    FEED = "feed"
    REFINE = "refine"
    INFER = "infer"
    CUSTOM = "custom"


@dataclass(frozen=True)
class Event:
    """One timestamped event with a free-form payload."""

    time: float
    kind: EventKind
    payload: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event(t={self.time:.4g}, {self.kind.value}, {self.payload})"


class EventLog:
    """Append-only, time-ordered event store."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def append(
        self,
        time: float,
        kind: EventKind,
        **payload: Any,
    ) -> Event:
        """Record an event; time must not precede the last event."""
        if self._events and time < self._events[-1].time - 1e-12:
            raise ValueError(
                f"event at t={time} precedes the last event at "
                f"t={self._events[-1].time}"
            )
        event = Event(float(time), EventKind(kind), dict(payload))
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def of_kind(self, kind: EventKind) -> List[Event]:
        """All events of one kind, in time order."""
        kind = EventKind(kind)
        return [e for e in self._events if e.kind is kind]

    def between(
        self, start: float, end: float, kind: Optional[EventKind] = None
    ) -> List[Event]:
        """Events with ``start <= time < end``, optionally filtered."""
        out = [e for e in self._events if start <= e.time < end]
        if kind is not None:
            kind = EventKind(kind)
            out = [e for e in out if e.kind is kind]
        return out

    def last(self, kind: Optional[EventKind] = None) -> Optional[Event]:
        """Most recent event (of a kind), or ``None``."""
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.kind is EventKind(kind):
                return event
        return None
