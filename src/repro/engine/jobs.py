"""Training-job lifecycle records."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class JobState(str, Enum):
    """Lifecycle of a training job on the shared cluster.

    ``PENDING → RUNNING → FINISHED`` is the happy path; a preemptive
    runtime may bounce a job through ``RUNNING ⇄ PREEMPTED`` any number
    of times before it finishes, and any non-terminal state may move to
    ``FAILED`` (trainer error, or the owning tenant departed while the
    job was still queued).
    """

    PENDING = "pending"
    RUNNING = "running"
    PREEMPTED = "preempted"
    FINISHED = "finished"
    FAILED = "failed"


#: States from which :meth:`Job.fail` is legal.
_FAILABLE = (JobState.PENDING, JobState.RUNNING, JobState.PREEMPTED)


@dataclass
class Job:
    """One (user, model) training run.

    Times are simulated wall-clock; ``gpu_time`` is the single-GPU
    work the job represents, while ``duration`` is the elapsed time
    after the pool's data-parallel speedup.  ``work_done`` accumulates
    completed single-GPU work across execution slices, so a preemptive
    runtime can requeue the job and later resume it with only
    ``remaining_gpu_time`` left to run.
    """

    job_id: int
    user: int
    model: int
    submit_time: float
    gpu_time: float
    state: JobState = JobState.PENDING
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    reward: Optional[float] = None
    work_done: float = 0.0
    preemptions: int = 0
    detail: dict = field(default_factory=dict)

    def start(self, time: float) -> None:
        if self.state is not JobState.PENDING:
            raise ValueError(f"cannot start a job in state {self.state}")
        self.state = JobState.RUNNING
        self.start_time = float(time)

    def preempt(self, time: float) -> None:
        """Suspend a running job (the runtime accounts progress first)."""
        if self.state is not JobState.RUNNING:
            raise ValueError(f"cannot preempt a job in state {self.state}")
        self.state = JobState.PREEMPTED
        self.preemptions += 1
        self.detail["last_preempted_at"] = float(time)

    def resume(self, time: float) -> None:
        """Put a preempted job back on devices."""
        if self.state is not JobState.PREEMPTED:
            raise ValueError(f"cannot resume a job in state {self.state}")
        self.state = JobState.RUNNING
        self.detail["last_resumed_at"] = float(time)

    def account_progress(self, work: float) -> None:
        """Credit ``work`` units of completed single-GPU time."""
        work = float(work)
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        self.work_done = min(self.work_done + work, self.gpu_time)

    @property
    def remaining_gpu_time(self) -> float:
        """Single-GPU work still outstanding."""
        return max(self.gpu_time - self.work_done, 0.0)

    def finish(self, time: float, reward: float) -> None:
        if self.state is not JobState.RUNNING:
            raise ValueError(f"cannot finish a job in state {self.state}")
        if self.start_time is not None and time < self.start_time:
            raise ValueError("job cannot finish before it started")
        self.state = JobState.FINISHED
        self.end_time = float(time)
        self.reward = float(reward)
        self.work_done = self.gpu_time

    def fail(self, time: float, reason: str = "") -> None:
        if self.state not in _FAILABLE:
            raise ValueError(f"cannot fail a job in state {self.state}")
        self.state = JobState.FAILED
        self.end_time = float(time)
        self.detail["failure_reason"] = reason

    @property
    def duration(self) -> Optional[float]:
        """Elapsed wall-clock time, if the job has ended."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job(#{self.job_id} u{self.user} m{self.model} "
            f"{self.state.value})"
        )
