"""Training-job lifecycle records."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class JobState(str, Enum):
    """Lifecycle of a training job on the shared cluster."""

    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class Job:
    """One (user, model) training run.

    Times are simulated wall-clock; ``gpu_time`` is the single-GPU
    work the job represents, while ``duration`` is the elapsed time
    after the pool's data-parallel speedup.
    """

    job_id: int
    user: int
    model: int
    submit_time: float
    gpu_time: float
    state: JobState = JobState.PENDING
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    reward: Optional[float] = None
    detail: dict = field(default_factory=dict)

    def start(self, time: float) -> None:
        if self.state is not JobState.PENDING:
            raise ValueError(f"cannot start a job in state {self.state}")
        self.state = JobState.RUNNING
        self.start_time = float(time)

    def finish(self, time: float, reward: float) -> None:
        if self.state is not JobState.RUNNING:
            raise ValueError(f"cannot finish a job in state {self.state}")
        if self.start_time is not None and time < self.start_time:
            raise ValueError("job cannot finish before it started")
        self.state = JobState.FINISHED
        self.end_time = float(time)
        self.reward = float(reward)

    def fail(self, time: float, reason: str = "") -> None:
        if self.state is not JobState.RUNNING:
            raise ValueError(f"cannot fail a job in state {self.state}")
        self.state = JobState.FAILED
        self.end_time = float(time)
        self.detail["failure_reason"] = reason

    @property
    def duration(self) -> Optional[float]:
        """Elapsed wall-clock time, if the job has ended."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job(#{self.job_id} u{self.user} m{self.model} "
            f"{self.state.value})"
        )
