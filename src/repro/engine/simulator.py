"""Oracle adapters and device-discipline simulations.

:class:`ClusterOracle` is the glue between the scheduler core and the
engine: it satisfies :class:`repro.core.oracles.RewardOracle` while a
trainer produces observations, the GPU pool converts GPU-time into
wall-clock, the clock advances, and every job lands in the event log.

:func:`simulate_dedicated_devices` implements the *multi-device
alternative* of the Section 5.3.2 discussion — one GPU per user, all
users training concurrently — so the single- vs multi-device trade-off
can be measured (benchmarks/bench_device_discipline.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.oracles import Observation, RewardOracle
from repro.datasets.base import ModelSelectionDataset
from repro.engine.clock import SimClock
from repro.engine.cluster import GPUPool
from repro.engine.events import EventKind, EventLog
from repro.engine.jobs import Job, JobState
from repro.engine.trainer import Trainer
from repro.utils.rng import RandomState, SeedLike


class ClusterOracle(RewardOracle):
    """RewardOracle that executes jobs on a simulated cluster.

    Each ``observe`` call submits, runs and completes one job under the
    single-device discipline (the whole pool trains it), advancing the
    shared clock by the job's wall-clock duration.  The *cost* reported
    to the scheduler is the wall-clock time — that is the resource the
    multi-tenant objective shares between users.
    """

    def __init__(
        self,
        trainer: Trainer,
        pool: Optional[GPUPool] = None,
        clock: Optional[SimClock] = None,
        log: Optional[EventLog] = None,
    ) -> None:
        self.trainer = trainer
        self.pool = pool if pool is not None else GPUPool()
        self.clock = clock if clock is not None else SimClock()
        self.log = log if log is not None else EventLog()
        self.jobs: List[Job] = []

    @property
    def n_users(self) -> int:
        return self.trainer.n_users

    def n_models(self, user: int) -> int:
        return self.trainer.n_models(user)

    def costs(self, user: int) -> np.ndarray:
        # Planning costs are wall-clock under the single-device
        # discipline: profiled GPU time divided by the pool speedup.
        return self.trainer.expected_costs(user) / self.pool.speedup()

    def observe(self, user: int, model: int) -> Observation:
        self._check_pair(user, model)
        job = Job(
            job_id=len(self.jobs),
            user=user,
            model=model,
            submit_time=self.clock.now,
            gpu_time=0.0,
        )
        self.jobs.append(job)
        self.log.append(
            self.clock.now, EventKind.JOB_SUBMITTED, job_id=job.job_id,
            user=user, model=model,
        )
        job.start(self.clock.now)
        self.log.append(
            self.clock.now, EventKind.JOB_STARTED, job_id=job.job_id,
            user=user, model=model, n_gpus=self.pool.n_gpus,
        )
        try:
            reward, gpu_time = self.trainer.train(user, model)
        except Exception as exc:
            # Trainer blew up (OOM, bad data, …): the job fails, the
            # event log records it, and the error propagates so the
            # caller can decide whether the run survives.
            job.fail(self.clock.now, reason=str(exc))
            self.log.append(
                self.clock.now, EventKind.JOB_FAILED, job_id=job.job_id,
                user=user, model=model, reason=str(exc),
            )
            raise
        job.gpu_time = gpu_time
        duration = self.pool.wall_clock_time(gpu_time)
        self.clock.advance(duration)
        job.finish(self.clock.now, reward)
        self.log.append(
            self.clock.now, EventKind.JOB_FINISHED, job_id=job.job_id,
            user=user, model=model, reward=reward, duration=duration,
        )
        self.log.append(
            self.clock.now, EventKind.MODEL_RETURNED, user=user,
            model=model, reward=reward,
        )
        return Observation(float(reward), float(duration))

    def finished_jobs(self) -> List[Job]:
        return [j for j in self.jobs if j.state is JobState.FINISHED]


@dataclass
class DedicatedDeviceResult:
    """Outcome of the one-GPU-per-user alternative.

    ``completion_times[i][k]`` is the wall-clock time at which user
    ``i``'s k-th training run finished; ``rewards[i][k]`` its accuracy.
    """

    completion_times: List[np.ndarray]
    rewards: List[np.ndarray]
    arms: List[np.ndarray]

    def best_reward_at(self, user: int, time: float) -> float:
        """Best accuracy user ``i`` holds at wall-clock ``time``."""
        times = self.completion_times[user]
        done = times <= time
        if not np.any(done):
            return 0.0
        return float(np.max(self.rewards[user][done]))

    def average_accuracy_loss_at(
        self, time: float, best_qualities: Sequence[float]
    ) -> float:
        """Mean over users of ``a*_i − best accuracy held at time``."""
        losses = [
            float(best_qualities[i]) - self.best_reward_at(i, time)
            for i in range(len(self.completion_times))
        ]
        return float(np.mean(losses))


def simulate_dedicated_devices(
    dataset: ModelSelectionDataset,
    *,
    horizon: float,
    order: str = "ucb",
    noise_std: float = 0.0,
    gp_noise: float = 0.05,
    seed: SeedLike = None,
) -> DedicatedDeviceResult:
    """Simulate one dedicated GPU per user until ``horizon``.

    Every user trains continuously on their own device (no sharing, no
    pool speedup).  ``order`` picks each user's exploration policy:
    ``"ucb"`` runs an independent cost-aware GP-UCB per user (with an
    empirical prior from the dataset itself), ``"random"`` explores
    uniformly.  Used by the device-discipline benchmark to contrast
    with the single-device :class:`ClusterOracle` runs.
    """
    from repro.core.beta import AlgorithmOneBeta
    from repro.core.ucb import GPUCB
    from repro.gp.covariance import empirical_model_covariance
    from repro.gp.regression import FiniteArmGP

    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    if order not in ("ucb", "random"):
        raise ValueError(f"order must be 'ucb' or 'random', got {order!r}")
    rng = RandomState(seed)
    cov = empirical_model_covariance(dataset.quality)

    completion_times: List[np.ndarray] = []
    rewards: List[np.ndarray] = []
    arms: List[np.ndarray] = []
    for user in range(dataset.n_users):
        costs = dataset.cost[user]
        policy: Optional[GPUCB] = None
        if order == "ucb":
            policy = GPUCB(
                FiniteArmGP(cov, noise=gp_noise),
                AlgorithmOneBeta(dataset.n_models),
                costs,
            )
        t = 0.0
        user_times: List[float] = []
        user_rewards: List[float] = []
        user_arms: List[int] = []
        while True:
            if policy is not None:
                arm = policy.select()
            else:
                arm = int(rng.integers(dataset.n_models))
            duration = float(costs[arm])
            if t + duration > horizon:
                break
            t += duration
            reward = float(dataset.quality[user, arm])
            if noise_std > 0:
                reward = float(
                    np.clip(reward + noise_std * rng.normal(), 0.0, 1.0)
                )
            if policy is not None:
                policy.observe(arm, reward)
            user_times.append(t)
            user_rewards.append(reward)
            user_arms.append(arm)
        completion_times.append(np.asarray(user_times))
        rewards.append(np.asarray(user_rewards))
        arms.append(np.asarray(user_arms, dtype=int))
    return DedicatedDeviceResult(completion_times, rewards, arms)
