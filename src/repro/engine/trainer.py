"""Trainer interfaces: what actually produces a (reward, gpu_time) pair.

* :class:`TraceTrainer` replays a quality/cost matrix — the protocol
  the paper itself uses for its experiments (measured accuracies are
  replayed, not retrained per scheduler run).
* :class:`CallableTrainer` wraps arbitrary per-(user, model) training
  callables; :mod:`repro.ml` builds these for *live* end-to-end runs
  where a numpy classifier is genuinely trained and evaluated and the
  cost is its measured work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.datasets.base import ModelSelectionDataset
from repro.utils.rng import RandomState, SeedLike


class Trainer(ABC):
    """Produces observations for (user, model) pairs."""

    @property
    @abstractmethod
    def n_users(self) -> int:
        """Number of users this trainer can serve."""

    @abstractmethod
    def n_models(self, user: int) -> int:
        """Number of candidate models for ``user``."""

    @abstractmethod
    def expected_costs(self, user: int) -> np.ndarray:
        """A-priori cost estimates (ease.ml's 'simple profiling')."""

    @abstractmethod
    def train(self, user: int, model: int) -> Tuple[float, float]:
        """Train ``model`` for ``user``; return ``(reward, gpu_time)``."""


class TraceTrainer(Trainer):
    """Replay a :class:`ModelSelectionDataset` with optional noise."""

    def __init__(
        self,
        dataset: ModelSelectionDataset,
        *,
        noise_std: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        self.dataset = dataset
        if noise_std < 0:
            raise ValueError(f"noise_std must be >= 0, got {noise_std}")
        self.noise_std = float(noise_std)
        self._rng = RandomState(seed)

    @property
    def n_users(self) -> int:
        return self.dataset.n_users

    def n_models(self, user: int) -> int:
        self._check_user(user)
        return self.dataset.n_models

    def expected_costs(self, user: int) -> np.ndarray:
        self._check_user(user)
        return self.dataset.cost[user].copy()

    def train(self, user: int, model: int) -> Tuple[float, float]:
        self._check_user(user)
        if not 0 <= model < self.dataset.n_models:
            raise IndexError(
                f"model {model} out of range [0, {self.dataset.n_models})"
            )
        reward = float(self.dataset.quality[user, model])
        if self.noise_std > 0:
            reward = float(
                np.clip(reward + self.noise_std * self._rng.normal(), 0.0, 1.0)
            )
        return reward, float(self.dataset.cost[user, model])

    def _check_user(self, user: int) -> None:
        if not 0 <= user < self.dataset.n_users:
            raise IndexError(
                f"user {user} out of range [0, {self.dataset.n_users})"
            )


class CallableTrainer(Trainer):
    """Trainer over per-user lists of training callables.

    ``tasks[user][model]`` is a zero-argument callable returning
    ``(reward, gpu_time)``; ``cost_estimates[user]`` are the known
    up-front costs the scheduler plans with (profiling estimates may
    differ from realised cost, as on a real cluster).
    """

    def __init__(
        self,
        tasks: Sequence[Sequence[Callable[[], Tuple[float, float]]]],
        cost_estimates: Sequence[np.ndarray],
    ) -> None:
        if len(tasks) != len(cost_estimates):
            raise ValueError(
                "tasks and cost_estimates must have one entry per user"
            )
        if not tasks:
            raise ValueError("at least one user is required")
        for i, (user_tasks, costs) in enumerate(zip(tasks, cost_estimates)):
            costs = np.asarray(costs, dtype=float)
            if len(user_tasks) != costs.shape[0]:
                raise ValueError(
                    f"user {i}: {len(user_tasks)} tasks but "
                    f"{costs.shape[0]} cost estimates"
                )
            if np.any(costs <= 0):
                raise ValueError(f"user {i}: cost estimates must be > 0")
        self._tasks = [list(user_tasks) for user_tasks in tasks]
        self._costs = [
            np.asarray(costs, dtype=float).copy() for costs in cost_estimates
        ]

    @property
    def n_users(self) -> int:
        return len(self._tasks)

    def n_models(self, user: int) -> int:
        self._check_user(user)
        return len(self._tasks[user])

    def expected_costs(self, user: int) -> np.ndarray:
        self._check_user(user)
        return self._costs[user].copy()

    def add_user(
        self,
        tasks: Sequence[Callable[[], Tuple[float, float]]],
        cost_estimates: np.ndarray,
    ) -> int:
        """Append one user's task row; returns the new user id.

        This is how a tenant arriving mid-run gets trainable work:
        existing user ids are untouched and the newcomer takes the
        fresh row index.
        """
        costs = np.asarray(cost_estimates, dtype=float).copy()
        if len(tasks) != costs.shape[0]:
            raise ValueError(
                f"{len(tasks)} tasks but {costs.shape[0]} cost estimates"
            )
        if np.any(costs <= 0):
            raise ValueError("cost estimates must be > 0")
        self._tasks.append(list(tasks))
        self._costs.append(costs)
        return len(self._tasks) - 1

    def update_costs(self, user: int, cost_estimates: np.ndarray) -> None:
        """Replace one user's planning-cost estimates.

        Used when a provisional row (a registered-but-not-yet-admitted
        tenant) gets its real profiling estimates at admission time.
        """
        self._check_user(user)
        costs = np.asarray(cost_estimates, dtype=float).copy()
        if costs.shape[0] != len(self._tasks[user]):
            raise ValueError(
                f"user {user}: {len(self._tasks[user])} tasks but "
                f"{costs.shape[0]} cost estimates"
            )
        if np.any(costs <= 0):
            raise ValueError("cost estimates must be > 0")
        self._costs[user] = costs

    def train(self, user: int, model: int) -> Tuple[float, float]:
        self._check_user(user)
        if not 0 <= model < len(self._tasks[user]):
            raise IndexError(
                f"model {model} out of range "
                f"[0, {len(self._tasks[user])}) for user {user}"
            )
        reward, gpu_time = self._tasks[user][model]()
        reward = float(reward)
        gpu_time = float(gpu_time)
        if gpu_time <= 0:
            raise ValueError(
                f"trainer callable returned non-positive gpu_time {gpu_time}"
            )
        return reward, gpu_time

    def _check_user(self, user: int) -> None:
        if not 0 <= user < len(self._tasks):
            raise IndexError(
                f"user {user} out of range [0, {len(self._tasks)})"
            )
