"""A virtual wall clock for discrete-event simulation."""

from __future__ import annotations

import math


class SimClock:
    """Monotonically advancing simulated time.

    Time is a float in arbitrary units (the benchmarks use "hours of
    AlexNet-equivalent GPU work").  The clock refuses to move
    backwards or to a non-finite instant, which catches
    double-accounting bugs in simulators (``NaN < 0`` is False, so an
    unchecked NaN delta would silently corrupt the clock forever).
    """

    def __init__(self, start: float = 0.0) -> None:
        start = float(start)
        if not math.isfinite(start):
            raise ValueError(f"start time must be finite, got {start}")
        self._now = start

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move forward by ``delta`` (must be ≥ 0); returns the new time."""
        delta = float(delta)
        if not math.isfinite(delta):
            raise ValueError(f"delta must be finite, got {delta}")
        if delta < 0:
            raise ValueError(f"cannot advance time by a negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute ``timestamp`` (must be ≥ now)."""
        timestamp = float(timestamp)
        if not math.isfinite(timestamp):
            raise ValueError(f"timestamp must be finite, got {timestamp}")
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, "
                f"target={timestamp}"
            )
        self._now = timestamp
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self._now:.4g})"
