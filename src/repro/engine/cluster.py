"""The shared GPU pool with single-device discipline.

ease.ml "uses all its GPUs to train a single model" (Section 2); the
paper's Section 5.3.2 discussion argues this single-device discipline
returns models to users faster than dedicating one GPU per user, given
near-linear data-parallel scaling (InfiniBand + low-precision
communication + the Goyal et al. learning-rate recipe).

:class:`GPUPool` models that: a job representing ``gpu_time`` units of
single-GPU work completes in ``gpu_time / speedup(n_gpus)`` wall-clock
units, with a configurable scaling efficiency.
"""

from __future__ import annotations

from repro.utils.validation import check_in_range, check_positive


class GPUPool:
    """A pool of identical GPUs with a data-parallel scaling model.

    Parameters
    ----------
    n_gpus:
        Number of devices (the paper's deployment has 24).
    scaling_efficiency:
        Fraction of ideal linear speedup retained per added GPU:
        ``speedup(g) = 1 + scaling_efficiency · (g - 1)``.
        1.0 is perfect scaling; 0.0 means extra GPUs add nothing.
    """

    def __init__(self, n_gpus: int = 24, scaling_efficiency: float = 0.9):
        self.n_gpus = int(n_gpus)
        if self.n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
        self.scaling_efficiency = check_in_range(
            scaling_efficiency, "scaling_efficiency", 0.0, 1.0
        )

    def speedup(self, n_gpus_used: int | None = None) -> float:
        """Effective speedup when ``n_gpus_used`` devices co-train a job."""
        g = self.n_gpus if n_gpus_used is None else int(n_gpus_used)
        if not 1 <= g <= self.n_gpus:
            raise ValueError(
                f"n_gpus_used must be in [1, {self.n_gpus}], got {g}"
            )
        return 1.0 + self.scaling_efficiency * (g - 1)

    def wall_clock_time(
        self, gpu_time: float, n_gpus_used: int | None = None
    ) -> float:
        """Elapsed time to complete ``gpu_time`` units of 1-GPU work."""
        gpu_time = check_positive(gpu_time, "gpu_time", strict=False)
        return gpu_time / self.speedup(n_gpus_used)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GPUPool(n_gpus={self.n_gpus}, "
            f"scaling_efficiency={self.scaling_efficiency})"
        )
