"""Simulated execution engine: the cluster substrate ease.ml runs on.

The paper's deployment trains each selected model on a pool of 24
TITAN X GPUs treated as a *single device* (Sections 2 and 4.5).  This
subpackage simulates that substrate:

* :mod:`repro.engine.clock` — a virtual wall clock;
* :mod:`repro.engine.events` — a typed, queryable event log;
* :mod:`repro.engine.cluster` — the GPU pool with single-device
  discipline and a data-parallel scaling model;
* :mod:`repro.engine.jobs` — training-job lifecycle records;
* :mod:`repro.engine.trainer` — trainer interfaces (trace replay and
  live training against :mod:`repro.ml` models);
* :mod:`repro.engine.simulator` — oracle adapters that tie trainers,
  the pool and the clock together, plus the dedicated-device
  simulation used by the single- vs multi-device discussion
  (Section 5.3.2).
"""

from repro.engine.clock import SimClock
from repro.engine.cluster import GPUPool
from repro.engine.events import Event, EventKind, EventLog
from repro.engine.jobs import Job, JobState
from repro.engine.simulator import (
    ClusterOracle,
    DedicatedDeviceResult,
    simulate_dedicated_devices,
)
from repro.engine.trainer import CallableTrainer, TraceTrainer, Trainer

__all__ = [
    "SimClock",
    "GPUPool",
    "Event",
    "EventKind",
    "EventLog",
    "Job",
    "JobState",
    "Trainer",
    "TraceTrainer",
    "CallableTrainer",
    "ClusterOracle",
    "simulate_dedicated_devices",
    "DedicatedDeviceResult",
]
