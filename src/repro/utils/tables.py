"""ASCII rendering for experiment tables and curve series.

The benchmark harness prints the same rows/series the paper reports;
this module keeps that formatting in one place so benchmarks stay
focused on the experiment logic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_float(value: float, precision: int = 4) -> str:
    """Format a float compactly: fixed-point for moderate magnitudes.

    >>> format_float(0.123456)
    '0.1235'
    >>> format_float(12345.0, 2)
    '12345.00'
    """
    return f"{float(value):.{precision}f}"


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(format_float(cell, precision))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(separator)))
    lines.append(fmt_line(list(headers)))
    lines.append(separator)
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def ascii_series(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    x_label: str = "x",
    title: Optional[str] = None,
    precision: int = 4,
    max_rows: int = 25,
) -> str:
    """Render aligned columns of one x-axis against several named series.

    Long grids are thinned down to ``max_rows`` evenly spaced rows so
    console output stays readable.
    """
    n = len(x)
    for name, values in series.items():
        if len(values) != n:
            raise ValueError(
                f"series {name!r} has {len(values)} points, x-axis has {n}"
            )
    if n > max_rows:
        step = max(1, (n - 1) // (max_rows - 1))
        keep = list(range(0, n, step))
        if keep[-1] != n - 1:
            keep.append(n - 1)
    else:
        keep = list(range(n))

    headers = [x_label] + list(series.keys())
    rows = []
    for i in keep:
        rows.append([float(x[i])] + [float(series[name][i]) for name in series])
    return ascii_table(headers, rows, title=title, precision=precision)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render a one-line unicode sparkline of ``values`` (paper-figure feel)."""
    blocks = "▁▂▃▄▅▆▇█"
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        step = len(vals) / width
        vals = [vals[int(i * step)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    if hi - lo < 1e-12:
        return blocks[0] * len(vals)
    scale = (len(blocks) - 1) / (hi - lo)
    return "".join(blocks[int((v - lo) * scale)] for v in vals)
