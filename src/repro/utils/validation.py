"""Argument-validation helpers with consistent error messages.

Raising early with a precise message is cheaper than debugging a shape
mismatch three layers down a scheduler run; these helpers keep the
checks one-liners at call sites.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Type

import numpy as np


def check_type(value: Any, expected: Type, name: str) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Raise ``ValueError`` unless ``value`` is positive (or non-negative)."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    *,
    inclusive: bool = True,
) -> float:
    """Raise ``ValueError`` unless ``value`` lies inside ``[low, high]``."""
    value = float(value)
    if low is not None:
        if inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value}")
        if not inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value}")
    if high is not None:
        if inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value}")
        if not inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value}")
    return value


def check_matrix(
    value: Any,
    name: str,
    *,
    shape: Optional[Tuple[Optional[int], Optional[int]]] = None,
    square: bool = False,
    finite: bool = True,
) -> np.ndarray:
    """Coerce ``value`` to a 2-D float array, validating shape constraints.

    ``shape`` entries of ``None`` accept any extent along that axis.
    """
    array = np.asarray(value, dtype=float)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got {array.ndim}-D")
    if square and array.shape[0] != array.shape[1]:
        raise ValueError(f"{name} must be square, got shape {array.shape}")
    if shape is not None:
        for axis, expected in enumerate(shape):
            if expected is not None and array.shape[axis] != expected:
                raise ValueError(
                    f"{name} must have shape {shape}, got {array.shape}"
                )
    if finite and not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must contain only finite values")
    return array


def check_vector(
    value: Any, name: str, *, size: Optional[int] = None, finite: bool = True
) -> np.ndarray:
    """Coerce ``value`` to a 1-D float array, validating its length."""
    array = np.asarray(value, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got {array.ndim}-D")
    if size is not None and array.shape[0] != size:
        raise ValueError(f"{name} must have length {size}, got {array.shape[0]}")
    if finite and not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must contain only finite values")
    return array
