"""Shared utilities: seeded randomness, validation helpers, ASCII tables.

These helpers are deliberately small and dependency-free so every other
subpackage (``repro.gp``, ``repro.core``, ``repro.datasets``, ...) can
rely on them without import cycles.
"""

from repro.utils.rng import RandomState, derive_seed, spawn_rngs
from repro.utils.tables import ascii_series, ascii_table, format_float
from repro.utils.validation import (
    check_in_range,
    check_matrix,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RandomState",
    "derive_seed",
    "spawn_rngs",
    "ascii_series",
    "ascii_table",
    "format_float",
    "check_in_range",
    "check_matrix",
    "check_positive",
    "check_probability",
    "check_type",
]
