"""Deterministic random-number management.

Every stochastic component in this repository draws randomness through a
``numpy.random.Generator`` passed in explicitly (never the global numpy
state).  The helpers here make it easy to

* accept flexible ``seed`` arguments (``None``, ``int`` or an existing
  generator) uniformly across the code base, and
* derive independent child seeds for repeated trials so experiment
  repetition ``i`` is reproducible in isolation.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Union

import numpy as np

#: Anything accepted where a seed is expected.
SeedLike = Union[None, int, np.random.Generator]


def RandomState(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``None`` yields a nondeterministic generator, an ``int`` a seeded
    one, and an existing generator is passed through unchanged.  The
    name mirrors the historical numpy spelling to read naturally at
    call sites (``rng = RandomState(seed)``).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: Union[int, str]) -> int:
    """Derive a stable child seed from ``base_seed`` and a label path.

    The derivation hashes the base seed together with the labels so
    that, e.g., trial 3 of experiment "fig9" always receives the same
    seed regardless of how many other experiments ran before it.

    >>> derive_seed(42, "fig9", 3) == derive_seed(42, "fig9", 3)
    True
    >>> derive_seed(42, "fig9", 3) != derive_seed(42, "fig9", 4)
    True
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "little")


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent generators.

    Uses numpy's ``SeedSequence.spawn`` when an integer (or ``None``)
    seed is supplied; an existing generator spawns children through its
    own bit generator seed sequence.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        children = seed.bit_generator.seed_seq.spawn(count)
    else:
        children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]


def permutation_without_replacement(
    rng: np.random.Generator, items: Iterable[int], size: Optional[int] = None
) -> List[int]:
    """Sample ``size`` distinct items (all of them by default), shuffled."""
    pool = list(items)
    if size is None:
        size = len(pool)
    if size > len(pool):
        raise ValueError(
            f"cannot sample {size} distinct items from a pool of {len(pool)}"
        )
    index = rng.permutation(len(pool))[:size]
    return [pool[i] for i in index]
