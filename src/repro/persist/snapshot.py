"""Compacted snapshots: the durable basis the journal tail extends.

A snapshot is the *authoritative command history* up to a sequence
number, written as one canonical-JSON document with an atomic
rename-into-place.  Recovery loads the latest valid snapshot and
replays its records, then the journal tail past the snapshot's
sequence number — so after every snapshot the live journal is
truncated to only the records the snapshot does not cover.

Why command history and not serialised object state?  The control
plane's state includes trained estimators, GP posteriors, a discrete-
event queue, and closures wired through callbacks — an object graph
that cannot be serialised faithfully.  But the whole system is
deterministic: all randomness flows through the server's seeded
generator in operation order, the simulated cluster is an event
kernel, and token generation (the one true nondeterminism) is captured
*in* the record.  Replaying the same records therefore rebuilds
byte-identical state — which is also what makes the determinism check
in the recovery tests possible.  Compaction drops records that are
provably dead under replay (superseded token rotations — tokens are
never consumed by replay, only the final binding matters); anything
that feeds the RNG or the scheduler (feeds, submits, completions) must
be kept, because dropping it would change every draw after it.

Each snapshot embeds a digest of the gateway state its records
produce, so recovery can verify the replay reached the same state the
live process had when it snapshotted.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.persist.journal import (
    JournalCorruptionError,
    JournalError,
    JournalRecord,
    canonical_json,
)

#: Bumped when the snapshot document shape changes incompatibly.
SNAPSHOT_FORMAT = 1

#: File left behind by every compaction: a ``seq -> snapshot`` pointer
#: (see :func:`write_compaction_pointer`) so a WAL tailer that finds
#: the live journal truncated past its frontier gets a clean "re-seed
#: from snapshot S" signal instead of a checksum/gap error.
COMPACTION_POINTER_NAME = "compaction.json"

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.json$")


class SnapshotError(JournalError):
    """No snapshot could be loaded from a state directory."""


def snapshot_path(state_dir: Union[str, Path], seq: int) -> Path:
    return Path(state_dir) / f"snapshot-{int(seq):012d}.json"


@dataclass
class Snapshot:
    """A loaded (or about-to-be-written) snapshot document."""

    seq: int
    records: List[JournalRecord]
    state_digest: Optional[str] = None
    path: Optional[Path] = None
    #: Snapshot files that failed validation and were skipped while
    #: looking for the latest *valid* one.
    skipped: List[str] = field(default_factory=list)


def _records_checksum(records: List[JournalRecord]) -> str:
    hasher = hashlib.sha256()
    for record in records:
        hasher.update(record.to_line().encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def write_snapshot(
    state_dir: Union[str, Path],
    seq: int,
    records: List[JournalRecord],
    *,
    state_digest: Optional[str] = None,
    keep: int = 2,
) -> Path:
    """Write ``snapshot-<seq>.json`` atomically; prune old snapshots.

    The document is canonical JSON (so two snapshots of the same
    records are byte-identical), written to a temp file, fsynced, and
    renamed into place — a reader never observes a half-written
    snapshot.  The newest ``keep`` snapshots are retained as fallbacks.
    """
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    document = {
        "format": SNAPSHOT_FORMAT,
        "seq": int(seq),
        "n_records": len(records),
        "checksum": _records_checksum(records),
        "state_digest": state_digest,
        "records": [
            {
                "seq": r.seq,
                "type": r.type,
                "payload": r.payload,
                "crc": r.crc,
            }
            for r in records
        ],
    }
    path = snapshot_path(state_dir, seq)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(document) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    for stale in list_snapshots(state_dir)[:-max(int(keep), 1)]:
        stale.unlink(missing_ok=True)
    return path


def write_compaction_pointer(
    state_dir: Union[str, Path], seq: int, snapshot_name: str
) -> Path:
    """Publish the ``seq -> snapshot`` pointer a compaction leaves.

    Written (atomically, like every durable artefact here) *after* the
    snapshot renames into place and *before* the live journal is
    truncated, so any tailer that observes the truncation is
    guaranteed to find a pointer at or past the records it lost.
    """
    state_dir = Path(state_dir)
    path = state_dir / COMPACTION_POINTER_NAME
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(
            canonical_json(
                {"seq": int(seq), "snapshot": str(snapshot_name)}
            )
            + "\n"
        )
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_compaction_pointer(
    state_dir: Union[str, Path]
) -> Optional[Dict[str, Union[int, str]]]:
    """The last compaction's ``{"seq": ..., "snapshot": ...}``, or None.

    Malformed pointers read as None (the pointer is an optimisation
    for tailers — :func:`load_latest_snapshot` remains the authority).
    """
    path = Path(state_dir) / COMPACTION_POINTER_NAME
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or "seq" not in data:
        return None
    try:
        return {
            "seq": int(data["seq"]),
            "snapshot": str(data.get("snapshot", "")),
        }
    except (TypeError, ValueError):
        return None


def list_snapshots(state_dir: Union[str, Path]) -> List[Path]:
    """Snapshot files in a state directory, oldest first."""
    state_dir = Path(state_dir)
    if not state_dir.is_dir():
        return []
    return sorted(
        p for p in state_dir.iterdir() if _SNAPSHOT_RE.match(p.name)
    )


def _load_one(path: Path) -> Snapshot:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"cannot read {path.name}: {exc}") from None
    if not isinstance(document, dict):
        raise SnapshotError(f"{path.name} is not a snapshot document")
    if document.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path.name} declares format {document.get('format')!r}; "
            f"this server reads format {SNAPSHOT_FORMAT}"
        )
    raw = document.get("records")
    if not isinstance(raw, list) or len(raw) != document.get("n_records"):
        raise SnapshotError(
            f"{path.name} record count does not match its header"
        )
    records: List[JournalRecord] = []
    for i, data in enumerate(raw, start=1):
        try:
            records.append(JournalRecord.from_wire(dict(data), line_no=i))
        except JournalCorruptionError as exc:
            raise SnapshotError(f"{path.name}: {exc}") from None
    if _records_checksum(records) != document.get("checksum"):
        raise SnapshotError(
            f"{path.name} fails its whole-document checksum"
        )
    return Snapshot(
        seq=int(document["seq"]),
        records=records,
        state_digest=document.get("state_digest"),
        path=path,
    )


def load_latest_snapshot(
    state_dir: Union[str, Path]
) -> Optional[Snapshot]:
    """The newest snapshot that validates, or None when none exist.

    A corrupt newest snapshot falls back to the previous one (they are
    retained for exactly this); when snapshots exist but *none*
    validates, loading fails loudly rather than silently replaying
    from genesis with records the snapshots were supposed to hold.
    """
    paths = list_snapshots(state_dir)
    if not paths:
        return None
    skipped: List[str] = []
    for path in reversed(paths):
        try:
            snapshot = _load_one(path)
        except SnapshotError as exc:
            skipped.append(f"{path.name}: {exc}")
            continue
        snapshot.skipped = skipped
        return snapshot
    raise SnapshotError(
        "no snapshot in the state directory validates: "
        + "; ".join(skipped)
    )


def compact_records(records: List[JournalRecord]) -> List[JournalRecord]:
    """Drop records that are provably dead under replay.

    Safe today: superseded ``token_rotated`` records (replay resolves
    tenants by name, never by token, so only the last binding per
    tenant is live state).  Everything else — feeds, submits,
    completions, quota changes — either feeds the seeded RNG, the
    scheduler, or a validation decision, and must be kept in order.
    """
    last_rotation: Dict[str, int] = {}
    for record in records:
        if record.type == "token_rotated":
            last_rotation[record.payload["name"]] = record.seq
    return [
        r
        for r in records
        if r.type != "token_rotated"
        or last_rotation[r.payload["name"]] == r.seq
    ]
