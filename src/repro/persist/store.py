"""StateStore: one state directory = config + journal + snapshots.

The store owns the on-disk layout::

    <state_dir>/
        config.json            backend shape (placement, seed, zoo, ...)
        journal.jsonl          the live write-ahead journal tail
        snapshot-<seq>.json    compacted history up to <seq> (newest
                               plus one fallback retained)

and the snapshot cadence: every ``snapshot_every`` appended records —
checked only at operation-group boundaries, so a snapshot never splits
a primary record from its effect records — the full history is
compacted, snapshotted with a digest of the live gateway state, and
the journal is truncated past the snapshot's sequence number.

The config document pins everything recovery needs to rebuild an
identical backend: replaying the journal against a differently-shaped
server (another seed, pool size, or zoo) would diverge immediately, so
``repro serve --state-dir`` always honours the stored config over its
command-line flags when recovering.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import NULL_REGISTRY
from repro.persist.journal import (
    JOURNAL_NAME,
    Journal,
    JournalError,
    JournalRecord,
    SYNC_MODES,
    canonical_json,
)
from repro.persist.snapshot import (
    compact_records,
    write_compaction_pointer,
    write_snapshot,
)

CONFIG_NAME = "config.json"

#: Token-file permissions: the journal carries tenant auth tokens.
_PRIVATE_MODE = 0o600


def write_config(state_dir: Union[str, Path], config: Dict[str, Any]) -> Path:
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    path = state_dir / CONFIG_NAME
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(config) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_config(state_dir: Union[str, Path]) -> Optional[Dict[str, Any]]:
    path = Path(state_dir) / CONFIG_NAME
    if not path.exists():
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            config = json.load(handle)
    except (OSError, ValueError) as exc:
        raise JournalError(
            f"cannot read {path}: {exc}; the state directory is "
            "damaged — restore config.json or start a fresh directory"
        ) from None
    if not isinstance(config, dict):
        raise JournalError(f"{path} is not a config document")
    return config


def has_state(state_dir: Union[str, Path]) -> bool:
    """Does this directory hold a durable control plane to recover?"""
    return (Path(state_dir) / CONFIG_NAME).exists()


def acquire_lock(state_dir: Union[str, Path]):
    """Take the directory's exclusive single-writer lock.

    Returns the open lock handle (closing it releases the lock).
    Raises :class:`JournalError` when another process holds it.
    """
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    handle = open(state_dir / "lock", "a+")
    try:
        import fcntl

        fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
    except ImportError:  # pragma: no cover - non-posix fallback
        pass
    except OSError:
        handle.close()
        raise JournalError(
            f"state directory {state_dir} is locked by another "
            "process (a running `repro serve`?); exactly one writer "
            "may own a journal"
        ) from None
    return handle


class StateStore:
    """The gateway's handle on its durable state directory.

    Parameters
    ----------
    state_dir:
        Directory to own (created if missing).
    sync:
        Journal durability mode (``"fsync"``, ``"buffered"``, or
        ``"group"`` — deferred fsync shared per commit convoy).
    snapshot_every:
        Take a snapshot (and truncate the journal) after this many
        appended records.  ``0`` disables automatic snapshots —
        ``repro state compact`` still takes manual ones.
    history:
        The full record basis (snapshot records + journal tail) when
        reopening after recovery; empty for a fresh directory.
    start_seq:
        Sequence number the journal continues from.
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        *,
        sync: str = "fsync",
        snapshot_every: int = 256,
        history: Optional[List[JournalRecord]] = None,
        start_seq: int = 0,
        snapshot_seq: int = 0,
        lock_handle=None,
    ) -> None:
        if sync not in SYNC_MODES:
            raise ValueError(
                f"sync must be one of {SYNC_MODES}, got {sync!r}"
            )
        if int(snapshot_every) < 0:
            raise ValueError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self.snapshot_every = int(snapshot_every)
        self.snapshot_seq = int(snapshot_seq)
        self._history: List[JournalRecord] = list(history or [])
        # Single-writer guard: two processes appending to one journal
        # interleave sequence numbers and corrupt the directory beyond
        # recovery, so the second opener must fail fast (this also
        # stops `repro state compact` against a live server).  A
        # caller that already locked the directory (recovery locks
        # before it reads) hands its handle over.
        self._lock_handle = (
            lock_handle
            if lock_handle is not None
            else acquire_lock(self.state_dir)
        )
        self.journal = Journal(
            self.journal_path, sync=sync, start_seq=start_seq
        )
        self.bind_metrics(NULL_REGISTRY)
        try:  # best-effort: tokens live in these files
            os.chmod(self.journal_path, _PRIVATE_MODE)
        except OSError:  # pragma: no cover - permissions are advisory
            pass

    def bind_metrics(self, registry) -> None:
        """Report journal/snapshot activity into ``registry``.

        The gateway calls this from ``attach_store``; the binding
        survives :meth:`snapshot` recreating the journal (the fresh
        journal is re-bound to the same registry).
        """
        self._metrics = registry
        self.journal.bind_metrics(registry)
        self._m_snapshots = registry.counter(
            "journal_snapshots_total",
            "Snapshots taken (automatic cadence plus manual compacts).",
        )
        self._m_snapshot_seconds = registry.histogram(
            "journal_snapshot_seconds",
            "Latency of one snapshot (compact + publish + truncate).",
        )
        self._m_compaction_dropped = registry.counter(
            "journal_compaction_dropped_total",
            "Records removed from history by snapshot compaction.",
        )

    @property
    def journal_path(self) -> Path:
        return self.state_dir / JOURNAL_NAME

    @property
    def last_seq(self) -> int:
        return self.journal.last_seq

    @property
    def history(self) -> List[JournalRecord]:
        """The full record basis (snapshot + live journal), in order."""
        return list(self._history)

    def append(self, rtype: str, payload: Dict[str, Any]) -> JournalRecord:
        record = self.journal.append(rtype, payload)
        self._history.append(record)
        return record

    def commit(self) -> None:
        """Group-commit barrier (see :meth:`Journal.commit`).

        The gateway runs this outside its lock before acking a
        mutation; a no-op unless the store was opened with
        ``sync="group"``.
        """
        self.journal.commit()

    @property
    def records_since_snapshot(self) -> int:
        return self.last_seq - self.snapshot_seq

    def due_for_snapshot(self) -> bool:
        return (
            self.snapshot_every > 0
            and self.records_since_snapshot >= self.snapshot_every
        )

    def snapshot(self, state_digest: Optional[str] = None) -> Path:
        """Compact history, publish a snapshot, truncate the journal."""
        started = time.perf_counter()
        records = compact_records(self._history)
        self._m_compaction_dropped.inc(len(self._history) - len(records))
        path = write_snapshot(
            self.state_dir,
            self.last_seq,
            records,
            state_digest=state_digest,
        )
        self._history = records
        self.snapshot_seq = self.last_seq
        # Published after the snapshot but before the truncation below:
        # a concurrent WAL tailer that observes the journal shrinking
        # past its frontier follows this pointer to the snapshot that
        # now covers the records it lost (a clean re-seed signal
        # instead of a checksum/gap error).
        write_compaction_pointer(self.state_dir, self.last_seq, path.name)
        # The snapshot now covers every journaled record: restart the
        # journal empty (crash between the rename above and this
        # rewrite is safe — recovery skips journal records at or below
        # the snapshot's seq).
        self.journal.close()
        self.journal_path.write_text("", encoding="utf-8")
        self.journal = Journal(
            self.journal_path, sync=self.sync, start_seq=self.last_seq
        )
        self.journal.bind_metrics(self._metrics)
        self._m_snapshots.inc()
        self._m_snapshot_seconds.observe(time.perf_counter() - started)
        return path

    def close(self) -> None:
        self.journal.close()
        if self._lock_handle is not None:
            self._lock_handle.close()  # releases the flock
            self._lock_handle = None
