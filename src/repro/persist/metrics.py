"""Offline journal metrics: the ``state inspect`` view of a directory.

Builds a :class:`~repro.obs.metrics.MetricsRegistry` from a record
basis read off disk, using the *same* family names and primitives the
live journal reports through ``/metrics`` — so an operator inspecting
a cold state directory and one scraping a running server read the
same vocabulary (``journal_records_total{type=...}``,
``journal_bytes_total``), plus a commit-lag gauge only the offline
view can compute (how far the journal tail has run past the last
snapshot).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.persist.journal import JournalRecord


def journal_metrics(
    records: Iterable[JournalRecord],
    *,
    snapshot_seq: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Populate a registry from journal/snapshot records.

    Parameters
    ----------
    records:
        The record basis, in order (snapshot records + journal tail).
    snapshot_seq:
        Sequence number the latest snapshot covers through; the
        commit-lag gauge reports how many records the tail holds past
        it (what a crash right now would have to replay).
    registry:
        Populate this registry instead of a fresh one (family
        re-registration makes sharing safe).
    """
    registry = registry if registry is not None else MetricsRegistry()
    m_records = registry.counter(
        "journal_records_total",
        "Records appended to the journal, by type.",
        ["type"],
    )
    m_bytes = registry.counter(
        "journal_bytes_total",
        "Bytes appended to the journal.",
    )
    m_lag = registry.gauge(
        "journal_commit_lag_records",
        "Records in the journal tail past the last snapshot "
        "(replay work after a crash right now).",
    )
    last_seq = int(snapshot_seq)
    for record in records:
        m_records.labels(record.type).inc()
        # +1 for the newline the on-disk framing appends per record.
        m_bytes.inc(len(record.to_line().encode("utf-8")) + 1)
        if record.seq > last_seq:
            last_seq = record.seq
    m_lag.set(last_seq - int(snapshot_seq))
    return registry
