"""The write-ahead journal: an append-only, checksummed JSONL log.

Every control-plane mutation the gateway performs lands here as one
:class:`JournalRecord` — a monotonically increasing sequence number, a
type from the *closed* :data:`RECORD_TYPES` registry, and a JSON-safe
payload — protected by a CRC32 over the record's canonical JSON form.
The file format is one JSON object per line::

    {"seq": 7, "type": "job_submitted", "payload": {...}, "crc": "9a1b2c3d"}

Durability discipline
---------------------
``sync="fsync"`` flushes *and* fsyncs after every append (a record is
on disk before the gateway acks the request — the WAL guarantee);
``sync="buffered"`` flushes to the OS after every append but leaves the
fsync to the kernel (a host crash may lose the tail, a process crash
does not); ``sync="group"`` flushes per append but defers the fsync to
the :meth:`Journal.commit` barrier the gateway runs before each ack —
the first committer in becomes the convoy leader and fsyncs once for
every record flushed so far, and committers whose records that flush
already covered return without touching the disk.  Group commit keeps
the full WAL guarantee (nothing is acked before a covering fsync)
while paying one fsync per *convoy* instead of one per record.  The
trade-offs are measured in ``benchmarks/bench_persist_overhead.py``.

Crash tolerance on read
-----------------------
A *torn tail* — the final line is incomplete or unparseable because the
process died mid-write — is expected and silently dropped (the request
it belonged to was never acked).  Anything else — a bad checksum, an
out-of-order sequence number, an unknown record type — means the file
was corrupted after the fact, and :func:`read_journal` refuses to load
it with a :class:`JournalCorruptionError` naming the offending line.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import jsonify
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.tracing import add_span

#: File name of the live journal inside a state directory.
JOURNAL_NAME = "journal.jsonl"

#: The closed registry of record types the journal accepts.  Primary
#: records are written by the gateway's mutating operations; *effect*
#: records (see :data:`EFFECT_TYPES`) describe deterministic
#: side-effects fired while a primary executed, and are verified —
#: not re-driven — during replay.
RECORD_TYPES = frozenset(
    {
        # Operator-side tenant lifecycle.
        "tenant_created",
        "tenant_retired",
        "token_rotated",
        "quota_changed",
        # App lifecycle through the request API.
        "app_registered",
        "app_closed",
        # Example-store mutations.
        "examples_fed",
        "example_toggled",
        # Async training.
        "job_submitted",
        "job_completed",
        "job_cancelled",
        # Scheduler-membership effects (emitted by the platform
        # server's admit/retire hooks).
        "app_admitted",
        "app_retired",
    }
)

#: Record types that describe side-effects of a primary operation.
#: ``job_completed`` additionally appears at the top level when a job
#: poll advanced the simulated cluster, and ``job_cancelled`` when
#: recovery marked an in-flight job lost.
EFFECT_TYPES = frozenset(
    {"app_admitted", "app_retired", "job_completed", "job_cancelled"}
)

#: Journal sync modes (``"off"`` means "no journal at all" and is only
#: meaningful to the benchmark; a constructed Journal is never off).
#: ``"group"`` defers fsync to the :meth:`Journal.commit` ack barrier.
SYNC_MODES = ("fsync", "buffered", "group")


class JournalError(Exception):
    """Base class for persistence failures."""


class JournalCorruptionError(JournalError):
    """The journal file fails validation (checksum, order, registry)."""


def canonical_json(value: Any) -> str:
    """The one serialisation used for checksums and snapshots.

    Sorted keys and minimal separators make the byte form a pure
    function of the value, so equal records always hash equal.
    """
    return json.dumps(jsonify(value), sort_keys=True, separators=(",", ":"))


def record_checksum(seq: int, rtype: str, payload: Dict[str, Any]) -> str:
    """CRC32 (hex) over the record's canonical JSON form."""
    blob = canonical_json({"seq": seq, "type": rtype, "payload": payload})
    return f"{zlib.crc32(blob.encode('utf-8')) & 0xFFFFFFFF:08x}"


@dataclass(frozen=True)
class JournalRecord:
    """One journaled control-plane mutation."""

    seq: int
    type: str
    payload: Dict[str, Any]

    def __post_init__(self) -> None:
        if self.type not in RECORD_TYPES:
            raise JournalError(
                f"record type {self.type!r} is not in the closed "
                f"registry; known types: {sorted(RECORD_TYPES)}"
            )

    @property
    def crc(self) -> str:
        return record_checksum(self.seq, self.type, self.payload)

    def to_line(self) -> str:
        return canonical_json(
            {
                "seq": self.seq,
                "type": self.type,
                "payload": self.payload,
                "crc": self.crc,
            }
        )

    @classmethod
    def from_wire(cls, data: Dict[str, Any], *, line_no: int) -> "JournalRecord":
        try:
            seq = int(data["seq"])
            rtype = str(data["type"])
            payload = dict(data["payload"])
            crc = str(data["crc"])
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalCorruptionError(
                f"journal line {line_no} is not a record "
                f"({type(exc).__name__}: {exc})"
            ) from None
        if rtype not in RECORD_TYPES:
            raise JournalCorruptionError(
                f"journal line {line_no} has unknown record type "
                f"{rtype!r}; this journal was written by a newer (or "
                f"foreign) server — known types: {sorted(RECORD_TYPES)}"
            )
        expected = record_checksum(seq, rtype, payload)
        if crc != expected:
            raise JournalCorruptionError(
                f"journal line {line_no} (seq {seq}, type {rtype!r}) "
                f"fails its checksum: recorded {crc}, computed "
                f"{expected} — the file was modified or damaged after "
                "it was written; restore from a snapshot"
            )
        return cls(seq=seq, type=rtype, payload=payload)


class Journal:
    """Append-only writer over the journal file.

    Appends are thread-safe and sequenced; the caller (the gateway)
    serialises them anyway under its global lock, which is what makes
    the journal a total order over control-plane mutations.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        sync: str = "fsync",
        start_seq: int = 0,
    ) -> None:
        if sync not in SYNC_MODES:
            raise ValueError(
                f"sync must be one of {SYNC_MODES}, got {sync!r}"
            )
        self.path = Path(path)
        self.sync = sync
        self._seq = int(start_seq)
        self._lock = threading.Lock()
        #: Highest sequence number known to be on disk (group mode);
        #: guarded by ``_flush_lock`` — the convoy gate.
        self._flushed_seq = int(start_seq)
        self._flush_lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self.bind_metrics(NULL_REGISTRY)

    def bind_metrics(self, registry) -> None:
        """Report append/fsync/commit timings into ``registry``.

        Unbound journals report into the shared disabled registry
        (every instrument a no-op), so the hot path never branches on
        whether observability is on.  The gateway binds its registry
        via :meth:`StateStore.bind_metrics` when a store is attached.
        """
        self._m_append_seconds = registry.histogram(
            "journal_append_seconds",
            "Latency of one journal append (serialise + write + "
            "flush, + fsync in fsync mode).",
        )
        self._m_records = registry.counter(
            "journal_records_total",
            "Records appended to the journal, by type.",
            ["type"],
        )
        self._m_bytes = registry.counter(
            "journal_bytes_total",
            "Bytes appended to the journal.",
        )
        self._m_fsync_seconds = registry.histogram(
            "journal_fsync_seconds",
            "Latency of one journal fsync (per-append or convoy).",
        )
        self._m_fsyncs = registry.counter(
            "journal_fsyncs_total",
            "Journal fsyncs issued.",
        )
        self._m_commit_seconds = registry.histogram(
            "journal_commit_seconds",
            "Latency of one group-commit barrier (leaders only).",
        )
        self._m_commit_rides = registry.counter(
            "journal_commit_rides_total",
            "Group commits satisfied by another convoy's fsync.",
        )
        self._m_flush_lag = registry.gauge(
            "journal_flush_lag_records",
            "Appended records not yet covered by an fsync "
            "(last_seq - flushed_seq).",
        )

    @property
    def last_seq(self) -> int:
        return self._seq

    @property
    def flushed_seq(self) -> int:
        """Highest seq covered by an fsync (only tracked in group mode)."""
        return self._flushed_seq

    def append(self, rtype: str, payload: Dict[str, Any]) -> JournalRecord:
        """Append one record; returns it with its sequence.

        In ``fsync`` mode the record is durable on return; in
        ``group`` mode the caller must run :meth:`commit` before
        acking whatever the record describes.
        """
        started = time.perf_counter()
        with self._lock:
            if self._handle is None:
                raise JournalError("journal is closed")
            record = JournalRecord(
                seq=self._seq + 1, type=rtype, payload=jsonify(payload)
            )
            line = record.to_line() + "\n"
            self._handle.write(line)
            self._handle.flush()
            if self.sync == "fsync":
                fsync_started = time.perf_counter()
                os.fsync(self._handle.fileno())
                fsync_ended = time.perf_counter()
                self._m_fsync_seconds.observe(fsync_ended - fsync_started)
                self._m_fsyncs.inc()
                add_span("journal.fsync", fsync_started, fsync_ended)
                self._flushed_seq = record.seq
            self._seq = record.seq
        ended = time.perf_counter()
        self._m_append_seconds.observe(ended - started)
        add_span("journal.append", started, ended, type=rtype,
                 seq=record.seq)
        self._m_records.labels(rtype).inc()
        self._m_bytes.inc(len(line.encode("utf-8")))
        if self.sync != "fsync":
            self._m_flush_lag.set(self._seq - self._flushed_seq)
        return record

    def commit(self, upto: Optional[int] = None) -> None:
        """Group-commit barrier: records up to ``upto`` are on disk.

        Only ``sync="group"`` does work here (``fsync`` is already
        durable per append; ``buffered`` deliberately leaves fsync to
        the kernel).  Concurrent committers convoy on the flush lock:
        the leader fsyncs once for every record flushed to the fd so
        far, and followers whose records that flush covered return
        without issuing their own.  ``upto`` defaults to the last
        appended record.
        """
        if self.sync != "group":
            return
        target = self._seq if upto is None else int(upto)
        if self._flushed_seq >= target:
            self._m_commit_rides.inc()
            return  # a previous convoy's flush already covered us
        started = time.perf_counter()
        with self._flush_lock:
            if self._flushed_seq >= target:
                self._m_commit_rides.inc()
                # Rode an earlier convoy: the barrier still cost the
                # queueing time, so the trace shows it.
                add_span("journal.commit", started,
                         time.perf_counter(), rode=True)
                return  # the leader's flush covered us while we queued
            with self._lock:
                if self._handle is None:
                    raise JournalError("journal is closed")
                fd = self._handle.fileno()
                # Everything appended so far is flushed to the fd, so
                # one fsync covers through the current tail — not just
                # our own record.
                cover = self._seq
            fsync_started = time.perf_counter()
            os.fsync(fd)
            fsync_ended = time.perf_counter()
            self._m_fsync_seconds.observe(fsync_ended - fsync_started)
            self._m_fsyncs.inc()
            add_span("journal.fsync", fsync_started, fsync_ended)
            self._flushed_seq = cover
        ended = time.perf_counter()
        self._m_commit_seconds.observe(ended - started)
        add_span("journal.commit", started, ended, rode=False)
        self._m_flush_lag.set(self._seq - self._flushed_seq)

    def records_from(self, since_seq: int) -> Iterator[JournalRecord]:
        """Validated records after ``since_seq``, read back off disk.

        The public tailing surface: a reader (a replica's WAL tailer,
        an operator tool) iterates records strictly greater than its
        frontier without taking the writer's flock — appends are
        whole-line writes, so a concurrent reader only ever sees
        complete records plus at most one torn final line, which is
        skipped exactly like crash recovery skips it.  Raises
        :class:`JournalCorruptionError` when the file does not
        contain ``since_seq + 1`` onward (the journal was compacted
        past the caller's frontier — re-seed from the snapshot the
        compaction pointer names).
        """
        return read_records_from(self.path, since_seq)

    def close(self) -> None:
        # Same lock order as commit (flush -> append), so a close
        # cannot interleave with a leader mid-fsync and yank the fd.
        with self._flush_lock:
            with self._lock:
                if self._handle is not None:
                    if self.sync == "group":
                        # Flush the tail: close must not silently drop
                        # records a commit barrier never covered.
                        self._handle.flush()
                        os.fsync(self._handle.fileno())
                        self._flushed_seq = self._seq
                    self._handle.close()
                    self._handle = None


def read_journal(
    path: Union[str, Path]
) -> Tuple[List[JournalRecord], int]:
    """Load and validate a journal file.

    Returns ``(records, dropped)`` where ``dropped`` counts torn tail
    lines discarded (0 or 1 — only the final line may legally be
    torn).  Raises :class:`JournalCorruptionError` for anything worse.
    """
    path = Path(path)
    records: List[JournalRecord] = []
    if not path.exists():
        return records, 0
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    dropped = 0
    for line_no, line in enumerate(lines, start=1):
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                raise ValueError("not a JSON object")
        except ValueError:
            if line_no == len(lines):
                dropped = 1  # torn tail: the process died mid-write
                break
            raise JournalCorruptionError(
                f"journal line {line_no} is not valid JSON but is not "
                "the final line — the file is damaged beyond a torn "
                "tail; restore from a snapshot"
            ) from None
        record = JournalRecord.from_wire(data, line_no=line_no)
        if records and record.seq != records[-1].seq + 1:
            raise JournalCorruptionError(
                f"journal line {line_no} has seq {record.seq} but the "
                f"previous record was seq {records[-1].seq}; records "
                "must be contiguous"
            )
        records.append(record)
    return records, dropped


def read_records_from(
    path: Union[str, Path], since_seq: int
) -> Iterator[JournalRecord]:
    """Yield validated records with seq > ``since_seq`` from a journal.

    Tolerates what a *live* journal legally exhibits under a
    concurrent writer: a torn (incomplete or half-flushed) final line
    is skipped, and records at or below ``since_seq`` (pre-snapshot
    overlap after a crash mid-compaction) are passed over.  A journal
    whose first surviving record is *past* ``since_seq + 1`` raises
    :class:`JournalCorruptionError` — the file was compacted beyond
    the caller's frontier and the caller must re-seed from a snapshot
    (see the compaction pointer in :mod:`repro.persist.snapshot`).
    """
    path = Path(path)
    since_seq = int(since_seq)
    if not path.exists():
        return
    with open(path, "rb") as handle:
        blob = handle.read()
    lines = blob.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    previous = None
    for line_no, line in enumerate(lines, start=1):
        last_line = line_no == len(lines)
        try:
            data = json.loads(line.decode("utf-8"))
            if not isinstance(data, dict):
                raise ValueError("not a JSON object")
            record = JournalRecord.from_wire(data, line_no=line_no)
        except (ValueError, UnicodeDecodeError):
            if last_line:
                return  # torn tail: the writer is (or died) mid-append
            raise JournalCorruptionError(
                f"journal line {line_no} is not valid JSON but is not "
                "the final line — the file is damaged beyond a torn "
                "tail; restore from a snapshot"
            ) from None
        except JournalCorruptionError:
            if last_line:
                return  # half-flushed final line: not yet a record
            raise
        if previous is not None and record.seq != previous + 1:
            raise JournalCorruptionError(
                f"journal line {line_no} has seq {record.seq} but the "
                f"previous record was seq {previous}; records must be "
                "contiguous"
            )
        if previous is None and record.seq > since_seq + 1:
            raise JournalCorruptionError(
                f"journal starts at seq {record.seq} but the caller's "
                f"frontier is {since_seq}; records "
                f"{since_seq + 1}..{record.seq - 1} were compacted "
                "away — re-seed from the latest snapshot"
            )
        previous = record.seq
        if record.seq > since_seq:
            yield record


def rewrite_journal(
    path: Union[str, Path], records: List[JournalRecord]
) -> None:
    """Atomically replace the journal with exactly ``records``.

    Used to truncate past a snapshot's sequence number and to shed a
    torn tail after recovery: write a temp file, fsync, rename into
    place (the same atomic-publish discipline snapshots use).
    """
    path = Path(path)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(record.to_line() + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
