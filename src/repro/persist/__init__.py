"""The durable control plane: journal, snapshots, crash recovery.

``repro serve`` keeps all control-plane state — tenants, tokens,
quotas, app tables, job handles, scheduler histories — in process
memory; this package makes it survive a restart:

* :mod:`repro.persist.journal` — an append-only, fsync-disciplined
  JSONL write-ahead log with sequenced, checksummed records drawn from
  a closed type registry;
* :mod:`repro.persist.snapshot` — periodic compacted snapshots with
  atomic rename-into-place, after which the journal is truncated past
  the snapshot's sequence number;
* :mod:`repro.persist.recovery` — rebuilds a
  :class:`~repro.service.gateway.ServiceGateway` by replaying the
  latest valid snapshot plus the journal tail, re-admitting tenants
  into the live scheduler and re-queueing (or marking lost) in-flight
  jobs with an explicit disposition on each handle;
* :mod:`repro.persist.store` — the per-directory orchestrator
  (config, snapshot cadence, journal truncation);
* :mod:`repro.persist.digest` — the replay-determinism tripwire.

Everything here is deterministic by construction: replaying the same
journal twice yields byte-identical recovered snapshots.
"""

from repro.persist.digest import state_digest, state_view
from repro.persist.journal import (
    EFFECT_TYPES,
    JOURNAL_NAME,
    Journal,
    JournalCorruptionError,
    JournalError,
    JournalRecord,
    RECORD_TYPES,
    canonical_json,
    read_journal,
    read_records_from,
    record_checksum,
    rewrite_journal,
)
from repro.persist.metrics import journal_metrics
from repro.persist.recovery import (
    IN_FLIGHT_POLICIES,
    RecoveryError,
    RecoveryReport,
    build_follower_gateway,
    cancel_in_flight,
    open_gateway,
    recover_gateway,
    replay_records,
)
from repro.persist.snapshot import (
    COMPACTION_POINTER_NAME,
    Snapshot,
    SnapshotError,
    compact_records,
    list_snapshots,
    load_latest_snapshot,
    read_compaction_pointer,
    write_compaction_pointer,
    write_snapshot,
)
from repro.persist.store import (
    StateStore,
    acquire_lock,
    has_state,
    read_config,
    write_config,
)

__all__ = [
    "COMPACTION_POINTER_NAME",
    "EFFECT_TYPES",
    "IN_FLIGHT_POLICIES",
    "JOURNAL_NAME",
    "Journal",
    "JournalCorruptionError",
    "JournalError",
    "JournalRecord",
    "RECORD_TYPES",
    "RecoveryError",
    "RecoveryReport",
    "Snapshot",
    "SnapshotError",
    "StateStore",
    "acquire_lock",
    "build_follower_gateway",
    "cancel_in_flight",
    "canonical_json",
    "compact_records",
    "has_state",
    "journal_metrics",
    "list_snapshots",
    "load_latest_snapshot",
    "open_gateway",
    "read_compaction_pointer",
    "read_config",
    "read_journal",
    "read_records_from",
    "record_checksum",
    "recover_gateway",
    "replay_records",
    "rewrite_journal",
    "state_digest",
    "state_view",
    "write_compaction_pointer",
    "write_config",
    "write_snapshot",
]
