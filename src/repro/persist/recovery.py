"""Crash recovery: rebuild a live ServiceGateway from a state directory.

Recovery loads the latest valid snapshot, replays its records through
a freshly-built gateway (verifying the snapshot's state digest at the
boundary), then replays the journal tail past the snapshot's sequence
number.  Because the whole control plane is deterministic — randomness
flows through the server's seeded generator in operation order, the
cluster is a discrete-event kernel, and tokens are journaled rather
than regenerated — replay rebuilds the *identical* state the dead
process had: tenants re-admitted into the live
:class:`~repro.core.multitenant.TenantRegistry`, trained models
reconstructed, terminal job results intact.

Jobs that were still in flight when the process died get an explicit
disposition on their handle:

* ``in_flight="requeue"`` (default) — the replayed cluster still holds
  them; they complete on future polls.  Disposition ``"recovered"``.
* ``in_flight="mark-lost"`` — they are cancelled (terminal
  ``cancelled`` state), journaled as a ``job_cancelled`` record so the
  *next* recovery agrees.  Disposition ``"lost"``.

While replay runs, the gateway answers every request with
``UNAVAILABLE_RECOVERING`` (HTTP 503).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.engine.jobs import JobState
from repro.persist.digest import state_digest
from repro.persist.journal import (
    EFFECT_TYPES,
    JOURNAL_NAME,
    JournalCorruptionError,
    JournalError,
    JournalRecord,
    canonical_json,
    read_journal,
    rewrite_journal,
)
from repro.persist.snapshot import load_latest_snapshot
from repro.persist.store import (
    StateStore,
    acquire_lock,
    has_state,
    read_config,
    write_config,
)
from repro.service.api import (
    CloseAppRequest,
    FeedRequest,
    RegisterAppRequest,
    SetExampleEnabledRequest,
    SubmitTrainingRequest,
)
from repro.service.gateway import ServiceGateway, TenantQuota

#: In-flight job policies.
IN_FLIGHT_POLICIES = ("requeue", "mark-lost")

_LIVE_STATES = (JobState.PENDING, JobState.RUNNING, JobState.PREEMPTED)


class RecoveryError(JournalError):
    """Replay diverged from the journal (or the journal is unusable)."""


@dataclass
class RecoveryReport:
    """What recovery found and did; ``describe()`` renders it."""

    state_dir: str
    snapshot_seq: int
    n_snapshot_records: int
    n_journal_records: int
    final_seq: int
    dropped_tail: int
    skipped_snapshots: List[str] = field(default_factory=list)
    tenants: List[str] = field(default_factory=list)
    n_jobs: int = 0
    recovered: List[str] = field(default_factory=list)
    lost: List[str] = field(default_factory=list)
    digest_verified: bool = False

    def describe(self) -> str:
        lines = [
            f"recovered control plane from {self.state_dir}",
            f"  snapshot: seq {self.snapshot_seq} "
            f"({self.n_snapshot_records} records"
            + (", digest verified)" if self.digest_verified else ")"),
            f"  journal tail: {self.n_journal_records} records"
            + (
                f" ({self.dropped_tail} torn tail record dropped)"
                if self.dropped_tail
                else ""
            ),
            f"  tenants: {', '.join(self.tenants) or '(none)'}",
            f"  job handles: {self.n_jobs} "
            f"({len(self.recovered)} requeued, {len(self.lost)} lost)",
        ]
        for skipped in self.skipped_snapshots:
            lines.append(f"  skipped invalid snapshot: {skipped}")
        return "\n".join(lines)


def _build_gateway(
    config: Dict[str, Any],
    gateway_factory: Optional[Callable[[Optional[dict]], ServiceGateway]],
    metrics=None,
) -> ServiceGateway:
    if gateway_factory is not None:
        return gateway_factory(config)
    kwargs: Dict[str, Any] = {}
    if metrics is not None:
        # Observability plumbing, not backend shape: never journaled,
        # so the replayed gateway can report into the caller's
        # registry without perturbing the stored config.
        kwargs["metrics"] = metrics
    for key in (
        "placement",
        "n_gpus",
        "scaling_efficiency",
        "preemption_overhead",
        "seed",
        "min_examples",
        "shard_read_locks",
    ):
        if config.get(key) is not None:
            kwargs[key] = config[key]
    if config.get("default_quota"):
        kwargs["default_quota"] = TenantQuota(**config["default_quota"])
    names = config.get("zoo_names")
    if names is not None:
        from repro.ml.zoo import default_zoo

        try:
            kwargs["zoo"] = default_zoo().subset(names)
        except (KeyError, ValueError) as exc:
            raise RecoveryError(
                f"the state directory was written against a zoo "
                f"({names}) this build cannot reconstruct ({exc}); "
                "pass gateway_factory to rebuild it"
            ) from None
    return ServiceGateway(**kwargs)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def _tenant_for(gateway: ServiceGateway, name: str):
    tenant = gateway._tenant_names.get(name)
    if tenant is None:
        raise RecoveryError(
            f"journal references tenant {name!r} before its "
            "tenant_created record"
        )
    return tenant


def _consume_effect(gateway: ServiceGateway, record: JournalRecord) -> None:
    """Match one journaled effect against the replay's fired effects."""
    if not gateway._pending_effects:
        raise RecoveryError(
            f"seq {record.seq}: journal records a {record.type!r} "
            "effect but replay fired none — the journal and this "
            "build have diverged"
        )
    rtype, payload = gateway._pending_effects.pop(0)
    if rtype != record.type or (
        canonical_json(payload) != canonical_json(record.payload)
    ):
        raise RecoveryError(
            f"seq {record.seq}: journal records {record.type!r} "
            f"{canonical_json(record.payload)} but replay fired "
            f"{rtype!r} {canonical_json(payload)}"
        )


def _apply_cancellation(
    gateway: ServiceGateway,
    handles: List[str],
    *,
    seq: int,
    disposition: Optional[str] = None,
) -> None:
    runtime_oracle = gateway.server._runtime_oracle
    for handle in handles:
        record = gateway._jobs.get(handle)
        if record is None:
            raise RecoveryError(
                f"seq {seq}: job_cancelled names unknown handle "
                f"{handle!r}"
            )
        if record.job.state is JobState.FINISHED:
            raise RecoveryError(
                f"seq {seq}: job_cancelled names handle {handle!r} "
                "but replay already finished it — the journal and "
                "this build have diverged"
            )
        if runtime_oracle is not None:
            runtime_oracle.runtime.cancel(
                record.job.job_id, reason="lost at recovery"
            )
        gateway.server._deferred_outcomes.pop(record.job.job_id, None)
        record.cancelled = True
        record.done_event.set()  # wake any long-poll on this handle
        if disposition is not None:
            record.disposition = disposition


def _apply_primary(gateway: ServiceGateway, record: JournalRecord) -> None:
    rtype, p = record.type, record.payload
    if rtype == "tenant_created":
        gateway.create_tenant(
            p["name"], TenantQuota(**p["quota"]), token=p["token"]
        )
    elif rtype == "tenant_retired":
        gateway.retire_tenant(p["name"])
    elif rtype == "token_rotated":
        gateway.rotate_token(p["name"], token=p["token"])
    elif rtype == "quota_changed":
        gateway.set_quota(p["name"], TenantQuota(**p["quota"]))
    elif rtype == "app_registered":
        tenant = _tenant_for(gateway, p["tenant"])
        gateway._register_app(
            tenant,
            RegisterAppRequest(
                auth_token=tenant.token, app=p["app"], program=p["program"]
            ),
        )
    elif rtype == "examples_fed":
        _replay_feed(gateway, record)
    elif rtype == "example_toggled":
        tenant = _tenant_for(gateway, p["tenant"])
        gateway._set_example_enabled(
            tenant,
            SetExampleEnabledRequest(
                auth_token=tenant.token,
                app=p["app"],
                example_id=int(p["example_id"]),
                enabled=bool(p["enabled"]),
            ),
        )
    elif rtype == "app_closed":
        tenant = _tenant_for(gateway, p["tenant"])
        gateway._close_app(
            tenant, CloseAppRequest(auth_token=tenant.token, app=p["app"])
        )
    elif rtype == "job_submitted":
        tenant = _tenant_for(gateway, p["tenant"])
        response = gateway._submit_training(
            tenant,
            SubmitTrainingRequest(
                auth_token=tenant.token, app=p["app"], steps=int(p["steps"])
            ),
        )
        replayed = [handle.job_id for handle in response.handles]
        if replayed != list(p["handles"]):
            raise RecoveryError(
                f"seq {record.seq}: replayed submit produced handles "
                f"{replayed}, journal says {list(p['handles'])}"
            )
    else:  # pragma: no cover - registry is closed upstream
        raise RecoveryError(f"seq {record.seq}: unhandled type {rtype!r}")


def _replay_feed(gateway: ServiceGateway, record: JournalRecord) -> None:
    import numpy as np

    p = record.payload
    if p.get("via") == "gateway" and p.get("tenant"):
        tenant = _tenant_for(gateway, p["tenant"])
        response = gateway._feed(
            tenant,
            FeedRequest(
                auth_token=tenant.token,
                app=p["app"],
                inputs=tuple(p["inputs"]),
                outputs=tuple(p["outputs"]),
            ),
        )
        replayed = list(response.example_ids)
    else:
        # A feed performed directly on the backing server (no tenant
        # accounting happened live, so none is replayed).
        app = gateway.server.get_app(p["app"])
        replayed = app.feed(
            [np.asarray(row, dtype=float) for row in p["inputs"]],
            [
                int(y) if isinstance(y, (int, float)) else
                np.asarray(y, dtype=float)
                for y in p["outputs"]
            ],
        )
    if list(replayed) != list(p["example_ids"]):
        raise RecoveryError(
            f"seq {record.seq}: replayed feed assigned example ids "
            f"{list(replayed)}, journal says {list(p['example_ids'])}"
        )


def _replay_records(
    gateway: ServiceGateway, records: List[JournalRecord]
) -> None:
    for record in records:
        try:
            if record.type in EFFECT_TYPES:
                if gateway._pending_effects:
                    _consume_effect(gateway, record)
                elif record.type == "job_completed":
                    # A poll advanced the cluster: re-advance until the
                    # next completion is absorbed, then match it.
                    oracle = gateway.server._runtime_oracle
                    if oracle is None:
                        raise RecoveryError(
                            f"seq {record.seq}: job_completed before "
                            "any training started"
                        )
                    oracle.runtime.run_until_next_completion()
                    _consume_effect(gateway, record)
                elif record.type == "job_cancelled":
                    # Top-level cancellation: a previous recovery
                    # marked these handles lost.
                    _apply_cancellation(
                        gateway,
                        list(record.payload["handles"]),
                        seq=record.seq,
                        disposition=None,
                    )
                elif record.type == "app_admitted":
                    gateway.server.admit_app(record.payload["app"])
                    _consume_effect(gateway, record)
                else:  # app_retired at top level
                    gateway.server.retire_app(record.payload["app"])
                    _consume_effect(gateway, record)
            else:
                if gateway._pending_effects:
                    raise RecoveryError(
                        f"seq {record.seq}: replay fired "
                        f"{len(gateway._pending_effects)} effect(s) the "
                        "journal does not record before this primary — "
                        "the journal and this build have diverged"
                    )
                _apply_primary(gateway, record)
        except RecoveryError:
            raise
        except Exception as exc:  # noqa: BLE001 - replay boundary
            raise RecoveryError(
                f"seq {record.seq} ({record.type}): replay failed with "
                f"{type(exc).__name__}: {exc}"
            ) from exc


# ----------------------------------------------------------------------
# Follower-mode apply (the replica subsystem builds on these)
# ----------------------------------------------------------------------
def build_follower_gateway(
    config: Dict[str, Any],
    *,
    metrics=None,
    gateway_factory: Optional[
        Callable[[Optional[dict]], ServiceGateway]
    ] = None,
) -> ServiceGateway:
    """Build the gateway shape a read replica replays records into.

    Identical construction to recovery (same config keys, same zoo
    subset, same seeded RNG), but the gateway is left in *follower
    mode*: ``_replaying`` stays True for the process lifetime, so
    applying records through the real handlers never re-journals and
    effects fired by replay are buffered for byte-verification against
    the journal's effect records — exactly the recovery discipline,
    applied incrementally.  No store is attached and no flock is
    taken: a follower is a pure reader of the writer's directory.
    """
    gateway = _build_gateway(config, gateway_factory, metrics=metrics)
    gateway._replaying = True
    return gateway


def replay_records(
    gateway: ServiceGateway, records: List[JournalRecord]
) -> None:
    """Re-execute journal records through the gateway's handlers.

    The follower-mode apply path: primaries re-run their real
    handlers, effect records are byte-verified against the effects the
    replay fired (buffered in the gateway while ``_replaying``), and a
    mismatch raises :class:`RecoveryError` rather than serving
    diverged state.  A record group may arrive split across calls — a
    tailer can observe a primary before its effect records land — so
    unconsumed effects legally carry over between calls; they are
    matched when the rest of the group arrives.
    """
    _replay_records(gateway, records)


def cancel_in_flight(
    gateway: ServiceGateway,
    handles: List[str],
    *,
    seq: int,
    disposition: Optional[str] = None,
) -> None:
    """Cancel handles recovery/promotion marked lost (public surface)."""
    _apply_cancellation(
        gateway, handles, seq=seq, disposition=disposition
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def recover_gateway(
    state_dir: Union[str, Path],
    *,
    in_flight: str = "requeue",
    sync: Optional[str] = None,
    snapshot_every: Optional[int] = None,
    gateway_factory: Optional[
        Callable[[Optional[dict]], ServiceGateway]
    ] = None,
    metrics=None,
) -> Tuple[ServiceGateway, RecoveryReport]:
    """Rebuild a gateway from ``state_dir`` and re-attach its store.

    ``sync`` / ``snapshot_every`` default to the values stored in the
    directory's config.  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) is handed to the
    rebuilt gateway — it is observability plumbing, not backend shape,
    so it is never journaled and never conflicts with the stored
    config (ignored when ``gateway_factory`` owns construction).
    Raises :class:`RecoveryError` (or a journal / snapshot corruption
    error) rather than serving diverged state.
    """
    if in_flight not in IN_FLIGHT_POLICIES:
        raise ValueError(
            f"in_flight must be one of {IN_FLIGHT_POLICIES}, "
            f"got {in_flight!r}"
        )
    state_dir = Path(state_dir)
    config = read_config(state_dir)
    if config is None:
        raise RecoveryError(
            f"{state_dir} has no config.json — not a state directory "
            "(or one from before its first request)"
        )
    # Lock before reading: a live writer appending mid-replay would
    # hand us a moving journal.
    lock_handle = acquire_lock(state_dir)
    try:
        return _recover_locked(
            state_dir,
            config,
            lock_handle,
            in_flight=in_flight,
            sync=sync,
            snapshot_every=snapshot_every,
            gateway_factory=gateway_factory,
            metrics=metrics,
        )
    except BaseException:
        lock_handle.close()
        raise


def _recover_locked(
    state_dir: Path,
    config: Dict[str, Any],
    lock_handle,
    *,
    in_flight: str,
    sync: Optional[str],
    snapshot_every: Optional[int],
    gateway_factory,
    metrics=None,
) -> Tuple[ServiceGateway, RecoveryReport]:
    snapshot = load_latest_snapshot(state_dir)
    journal_records, dropped = read_journal(state_dir / JOURNAL_NAME)
    snap_seq = snapshot.seq if snapshot else 0
    snap_records = snapshot.records if snapshot else []
    overlap = [r for r in journal_records if r.seq <= snap_seq]
    tail = [r for r in journal_records if r.seq > snap_seq]
    if tail and tail[0].seq != snap_seq + 1:
        raise JournalCorruptionError(
            f"journal tail starts at seq {tail[0].seq} but the "
            f"snapshot covers through seq {snap_seq}; records "
            f"{snap_seq + 1}..{tail[0].seq - 1} are missing"
        )

    gateway = _build_gateway(config, gateway_factory, metrics=metrics)
    gateway._recovering = True
    gateway._replaying = True
    digest_verified = False
    try:
        _replay_records(gateway, snap_records)
        if snapshot is not None and snapshot.state_digest:
            if gateway._pending_effects:
                raise RecoveryError(
                    "snapshot boundary splits an operation group "
                    "(unconsumed effects at the digest checkpoint)"
                )
            actual = state_digest(gateway)
            if actual != snapshot.state_digest:
                raise RecoveryError(
                    f"replayed state digest {actual[:16]}… does not "
                    f"match the snapshot's "
                    f"{snapshot.state_digest[:16]}… — refusing to "
                    "serve diverged state (journal tampering, a "
                    "changed environment, or a replay bug)"
                )
            digest_verified = True
        _replay_records(gateway, tail)
        # Effects fired by the final operation may have been torn off
        # the journal tail with the crash.  State already reflects
        # them, so they are not re-verified — but they MUST be
        # re-journaled below (once the store is attached), or the
        # next recovery would find the same effects fired with no
        # record and refuse the directory forever.
        torn_effects = list(gateway._pending_effects)
        gateway._pending_effects.clear()
    finally:
        gateway._replaying = False

    # Dispositions for jobs that were in flight at the crash.
    recovered: List[str] = []
    lost: List[str] = []
    for handle, record in sorted(gateway._jobs.items()):
        if record.cancelled or record.job.state not in _LIVE_STATES:
            continue
        if in_flight == "requeue":
            record.disposition = "recovered"
            recovered.append(handle)
        else:
            lost.append(handle)

    last_seq = tail[-1].seq if tail else snap_seq
    if dropped or overlap:
        # Shed the torn tail / pre-snapshot overlap so appends resume
        # on a clean file.
        rewrite_journal(state_dir / JOURNAL_NAME, tail)
    store = StateStore(
        state_dir,
        sync=sync if sync is not None else config.get("sync", "fsync"),
        snapshot_every=(
            snapshot_every
            if snapshot_every is not None
            else int(config.get("snapshot_every", 256))
        ),
        history=snap_records + tail,
        start_seq=last_seq,
        snapshot_seq=snap_seq,
        lock_handle=lock_handle,
    )
    gateway.attach_store(store)
    for rtype, payload in torn_effects:
        store.append(rtype, payload)
    if lost:
        _apply_cancellation(
            gateway, lost, seq=last_seq, disposition="lost"
        )
        gateway._persist("job_cancelled", {"handles": lost})
    # Group mode defers fsync to the commit barrier: everything
    # recovery re-journaled must be durable before serving resumes.
    store.commit()
    gateway._recovering = False

    report = RecoveryReport(
        state_dir=str(state_dir),
        snapshot_seq=snap_seq,
        n_snapshot_records=len(snap_records),
        n_journal_records=len(tail),
        final_seq=store.last_seq,
        dropped_tail=dropped,
        skipped_snapshots=list(snapshot.skipped) if snapshot else [],
        tenants=sorted(gateway._tenant_names),
        n_jobs=len(gateway._jobs),
        recovered=recovered,
        lost=lost,
        digest_verified=digest_verified,
    )
    return gateway, report


def open_gateway(
    state_dir: Union[str, Path],
    *,
    sync: Optional[str] = None,
    snapshot_every: Optional[int] = None,
    in_flight: str = "requeue",
    gateway_factory: Optional[
        Callable[[Optional[dict]], ServiceGateway]
    ] = None,
    **gateway_kwargs: Any,
) -> Tuple[ServiceGateway, Optional[RecoveryReport]]:
    """Open a durable gateway: recover if state exists, else start fresh.

    The fresh path writes ``config.json`` (the backend shape recovery
    will rebuild) and attaches an empty store; the recover path honours
    the stored config and ignores ``gateway_kwargs`` — except
    ``metrics``, which is observability plumbing (never journaled) and
    rides through to the rebuilt gateway on both paths.
    """
    state_dir = Path(state_dir)
    if has_state(state_dir):
        return recover_gateway(
            state_dir,
            in_flight=in_flight,
            sync=sync,
            snapshot_every=snapshot_every,
            gateway_factory=gateway_factory,
            metrics=gateway_kwargs.get("metrics"),
        )
    gateway = (
        gateway_factory(None)
        if gateway_factory is not None
        else ServiceGateway(**gateway_kwargs)
    )
    config = gateway.persist_config
    if config is None:
        raise RecoveryError(
            "this gateway wraps an externally-built server, so its "
            "backend shape (seed, zoo) cannot be recorded for "
            "recovery; build the gateway from keyword arguments to "
            "use --state-dir"
        )
    sync = sync if sync is not None else "fsync"
    snapshot_every = 256 if snapshot_every is None else int(snapshot_every)
    config = dict(config)
    config["sync"] = sync
    config["snapshot_every"] = snapshot_every
    write_config(state_dir, config)
    store = StateStore(
        state_dir, sync=sync, snapshot_every=snapshot_every
    )
    gateway.attach_store(store)
    return gateway, None
