"""A digest of the gateway's replay-reproducible state.

Snapshots embed this digest; recovery recomputes it after replaying
the snapshot's records and refuses to proceed on a mismatch — the
determinism tripwire that catches journal tampering, a drifted
environment (different numpy producing different accuracies), or a
replay bug, *before* the diverged state serves traffic.

Only state the journal can reproduce is digested.  Deliberately
excluded: the event log (read-only operations append INFER/REFINE
events that are not journaled), handle dispositions (session-local
advisory metadata about what *this* process's recovery did), and
in-memory plumbing (locks, hooks, caches) that is rebuilt, not
recovered.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import asdict

from repro.persist.journal import canonical_json


def state_view(gateway) -> dict:
    """The digested state, as a canonical-JSON-able document."""
    server = gateway.server
    tenants = [
        {
            "name": tenant.name,
            "token": tenant.token,
            "retired": tenant.retired,
            "store_bytes": int(tenant.store_bytes),
            "quota": asdict(tenant.quota),
            "apps": list(tenant.apps),
        }
        for _, tenant in sorted(gateway._tenant_names.items())
    ]
    apps = [
        {
            "name": app.name,
            "closed": app.closed,
            "n_examples": len(app.store),
            "n_enabled": app.store.n_enabled,
            "history": [asdict(outcome) for outcome in app.history],
            "best_accuracy": (
                None if math.isinf(app.best_accuracy) else app.best_accuracy
            ),
            "best_candidate": app.best_candidate,
            "best_version": app.best_version,
        }
        for app in server.apps
    ]
    jobs = [
        {
            "handle": record.handle_id,
            "tenant": record.tenant,
            "app": record.app,
            "candidate": record.candidate,
            "state": gateway._record_state(record),
            "history_index": record.history_index,
        }
        for _, record in sorted(gateway._jobs.items())
    ]
    scheduler = server.scheduler
    runtime_oracle = server._runtime_oracle
    return {
        "tenants": tenants,
        "apps": apps,
        "jobs": jobs,
        "clock": server.clock.now,
        "scheduler": (
            None
            if scheduler is None
            else {
                "step_count": scheduler.step_count,
                "total_cost": scheduler.total_cost,
                "n_records": len(scheduler.records),
            }
        ),
        "runtime": (
            None
            if runtime_oracle is None
            else {
                "n_jobs": len(runtime_oracle.runtime.jobs),
                "n_finished": len(runtime_oracle.runtime.finished_jobs()),
                "n_failed": len(runtime_oracle.runtime.failed_jobs()),
            }
        ),
    }


def state_digest(gateway) -> str:
    """SHA-256 over the canonical JSON of :func:`state_view`."""
    blob = canonical_json(state_view(gateway))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
