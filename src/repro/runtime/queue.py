"""The discrete-event priority queue at the heart of the runtime.

A classic simulation kernel: events are ordered by ``(time, seq)``
where ``seq`` is a monotonically increasing insertion counter, so two
events scheduled for the same instant pop in FIFO order.  That makes
every run of the kernel a *deterministic* function of the pushed
events — the property the trace record/replay tooling relies on for
bit-for-bit reproducibility.

The queue also refuses time travel: once an event at time ``t`` has
been popped, pushing an event earlier than ``t`` raises.  A runtime
that schedules into the past has a causality bug; failing loudly beats
silently reordering history.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.events import EventKind


@dataclass(frozen=True)
class ScheduledEvent:
    """One future occurrence: a kind, a payload, and its slot in time.

    ``seq`` is assigned by the queue at push time and provides the
    deterministic tie-break for simultaneous events.
    """

    time: float
    seq: int
    kind: EventKind
    payload: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScheduledEvent(t={self.time:.4g}, #{self.seq}, "
            f"{self.kind.value}, {self.payload})"
        )


class EventQueue:
    """Heap-based future-event list with deterministic tie-breaking."""

    def __init__(self, start: float = 0.0) -> None:
        start = float(start)
        if not math.isfinite(start):
            raise ValueError(f"start time must be finite, got {start}")
        self._heap: List[Tuple[float, int, ScheduledEvent]] = []
        self._seq = 0
        self._horizon = start

    @property
    def horizon(self) -> float:
        """Time of the latest event popped so far (the causal frontier)."""
        return self._horizon

    def push(
        self, time: float, kind: EventKind, **payload: Any
    ) -> ScheduledEvent:
        """Schedule an event; ``time`` must not precede the horizon."""
        time = float(time)
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time}")
        if time < self._horizon:
            raise ValueError(
                f"cannot schedule an event at t={time} before the "
                f"causal horizon t={self._horizon} (time travel)"
            )
        event = ScheduledEvent(time, self._seq, EventKind(kind), dict(payload))
        self._seq += 1
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def pop(self) -> ScheduledEvent:
        """Remove and return the earliest event (FIFO on time ties)."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        time, _, event = heapq.heappop(self._heap)
        self._horizon = time
        return event

    def peek(self) -> Optional[ScheduledEvent]:
        """The earliest event without removing it, or ``None``."""
        return self._heap[0][2] if self._heap else None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventQueue(pending={len(self._heap)}, "
            f"horizon={self._horizon:.4g})"
        )
