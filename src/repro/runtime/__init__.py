"""Discrete-event cluster runtime: concurrency the seed engine lacks.

The :mod:`repro.engine` substrate executes exactly one job at a time.
This package is the event-driven runtime on top of it, the foundation
for cluster dynamics the paper's Section 5.3.2 discussion only gestures
at (and that Dorm, arXiv:1704.06738, and "No DNN Left Behind",
arXiv:1901.06887, argue multi-tenant ML systems need):

* :mod:`repro.runtime.queue` — the heap-based discrete-event kernel
  queue, ordered by ``(time, seq)`` with deterministic FIFO
  tie-breaking;
* :mod:`repro.runtime.placement` — pluggable device-placement
  policies: single-device (the paper), per-user dedicated devices, and
  Dorm-style dynamic equal-share partitioning;
* :mod:`repro.runtime.kernel` — :class:`ClusterRuntime`, a
  preemption-capable executor multiplexing concurrent jobs over the
  shared :class:`~repro.engine.cluster.GPUPool`;
* :mod:`repro.runtime.workload` — Poisson/deterministic tenant
  arrival/departure generation and JSONL trace record/replay;
* :mod:`repro.runtime.oracle` — :class:`AsyncClusterOracle`, which
  lets the :class:`~repro.core.multitenant.MultiTenantScheduler` keep
  dispatching while jobs complete out of order;
* :mod:`repro.runtime.trace` — execution-log JSONL serialisation plus
  makespan / time-averaged-regret metrics for the placement benchmark.
"""

from repro.runtime.kernel import ClusterRuntime
from repro.runtime.oracle import AsyncClusterOracle
from repro.runtime.placement import (
    PLACEMENT_POLICIES,
    DedicatedDevicePlacement,
    DynamicPartitionPlacement,
    PlacementPolicy,
    SingleDevicePlacement,
    make_placement,
)
from repro.runtime.queue import EventQueue, ScheduledEvent
from repro.runtime.trace import (
    TraceDivergence,
    diff_event_files,
    diff_event_logs,
    events_to_jsonl,
    first_divergence,
    makespan,
    read_events_jsonl,
    time_averaged_regret,
    write_events_jsonl,
)
from repro.runtime.workload import (
    WorkloadGenerator,
    WorkloadItem,
    WorkloadTrace,
    replay_trace,
)

__all__ = [
    "EventQueue",
    "ScheduledEvent",
    "PlacementPolicy",
    "SingleDevicePlacement",
    "DedicatedDevicePlacement",
    "DynamicPartitionPlacement",
    "PLACEMENT_POLICIES",
    "make_placement",
    "ClusterRuntime",
    "AsyncClusterOracle",
    "WorkloadGenerator",
    "WorkloadItem",
    "WorkloadTrace",
    "replay_trace",
    "events_to_jsonl",
    "write_events_jsonl",
    "read_events_jsonl",
    "makespan",
    "time_averaged_regret",
    "TraceDivergence",
    "first_divergence",
    "diff_event_logs",
    "diff_event_files",
]
