"""Device-placement policies: who gets how many GPUs right now.

The paper's Section 5.3.2 contrasts exactly two disciplines — the
whole pool as a *single device* versus one dedicated GPU per user.
Related work widens the spectrum: Dorm (arXiv:1704.06738) dynamically
repartitions a shared cluster equally across concurrently-running jobs,
repartitioning (and hence preempting/resizing) whenever the job set
changes.  All three are expressed here as pluggable policies over the
same :class:`~repro.engine.cluster.GPUPool`.

A policy is a pure function from the current schedulable jobs to a
*desired allocation* ``{job_id: n_gpus}``.  The runtime kernel diffs
that against reality: jobs gaining devices are started or resumed,
jobs losing devices are preempted (and requeued when dropped to zero).
Policies never mutate jobs; determinism follows from building the
returned dict in the deterministic FIFO order of ``jobs``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Sequence

from repro.engine.cluster import GPUPool
from repro.engine.jobs import Job


class PlacementPolicy(ABC):
    """Maps schedulable jobs to a desired ``{job_id: n_gpus}``."""

    #: Short name used by the CLI / registry.
    name: str = "abstract"

    @abstractmethod
    def allocate(
        self,
        jobs: Sequence[Job],
        current: Mapping[int, int],
        pool: GPUPool,
    ) -> Dict[int, int]:
        """Return the desired allocation.

        Parameters
        ----------
        jobs:
            All schedulable jobs (running and queued) in FIFO arrival
            order — the deterministic priority order.
        current:
            ``{job_id: n_gpus}`` for jobs currently holding devices
            (queued jobs are absent).
        pool:
            The shared pool; allocations must sum to ``<= pool.n_gpus``.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SingleDevicePlacement(PlacementPolicy):
    """ease.ml's discipline: the whole pool trains one job at a time.

    Non-preemptive FIFO — a running job keeps all devices until it
    completes, then the next queued job takes the full pool.
    """

    name = "single"

    def allocate(
        self,
        jobs: Sequence[Job],
        current: Mapping[int, int],
        pool: GPUPool,
    ) -> Dict[int, int]:
        for job in jobs:
            if current.get(job.job_id, 0) > 0:
                return {job.job_id: current[job.job_id]}
        if jobs:
            return {jobs[0].job_id: pool.n_gpus}
        return {}


class DedicatedDevicePlacement(PlacementPolicy):
    """The Section 5.3.2 alternative: per-user dedicated devices.

    Each user runs at most one job at a time on ``gpus_per_user``
    devices; different users' jobs run concurrently until the pool is
    exhausted.  Non-preemptive: running jobs always keep their devices.
    """

    name = "dedicated"

    def __init__(self, gpus_per_user: int = 1) -> None:
        self.gpus_per_user = int(gpus_per_user)
        if self.gpus_per_user < 1:
            raise ValueError(
                f"gpus_per_user must be >= 1, got {gpus_per_user}"
            )

    def allocate(
        self,
        jobs: Sequence[Job],
        current: Mapping[int, int],
        pool: GPUPool,
    ) -> Dict[int, int]:
        desired: Dict[int, int] = {}
        busy_users = set()
        used = 0
        # Running jobs are sacrosanct; keep them first.
        for job in jobs:
            held = current.get(job.job_id, 0)
            if held > 0:
                desired[job.job_id] = held
                busy_users.add(job.user)
                used += held
        # Then admit at most one queued job per idle user, FIFO.
        for job in jobs:
            if job.job_id in desired or job.user in busy_users:
                continue
            if used + self.gpus_per_user > pool.n_gpus:
                continue
            desired[job.job_id] = self.gpus_per_user
            busy_users.add(job.user)
            used += self.gpus_per_user
        return desired

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DedicatedDevicePlacement(gpus_per_user={self.gpus_per_user})"


class DynamicPartitionPlacement(PlacementPolicy):
    """Dorm-style dynamic equal-share partitioning (arXiv:1704.06738).

    Every schedulable job runs concurrently (up to one device each at
    minimum), with the pool split as equally as integer arithmetic
    allows; earlier arrivals receive the remainder devices.  Whenever
    the job set changes, the partition is recomputed — the runtime
    kernel turns the resulting allocation deltas into preemptions and
    resizes, which is exactly Dorm's "utilization fairness with
    adjustment overhead" trade-off.
    """

    name = "partition"

    def __init__(self, max_parallel: Optional[int] = None) -> None:
        if max_parallel is not None and int(max_parallel) < 1:
            raise ValueError(
                f"max_parallel must be >= 1, got {max_parallel}"
            )
        self.max_parallel = None if max_parallel is None else int(max_parallel)

    def allocate(
        self,
        jobs: Sequence[Job],
        current: Mapping[int, int],
        pool: GPUPool,
    ) -> Dict[int, int]:
        k = min(len(jobs), pool.n_gpus)
        if self.max_parallel is not None:
            k = min(k, self.max_parallel)
        if k == 0:
            return {}
        base, extra = divmod(pool.n_gpus, k)
        return {
            job.job_id: base + (1 if i < extra else 0)
            for i, job in enumerate(jobs[:k])
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DynamicPartitionPlacement(max_parallel={self.max_parallel})"


#: Registry used by the CLI, the server backend and the benchmarks.
PLACEMENT_POLICIES = {
    SingleDevicePlacement.name: SingleDevicePlacement,
    DedicatedDevicePlacement.name: DedicatedDevicePlacement,
    DynamicPartitionPlacement.name: DynamicPartitionPlacement,
}


def make_placement(name: str, **kwargs) -> PlacementPolicy:
    """Instantiate a placement policy by its registry name."""
    if name not in PLACEMENT_POLICIES:
        raise ValueError(
            f"unknown placement policy {name!r}; choose from "
            f"{sorted(PLACEMENT_POLICIES)}"
        )
    return PLACEMENT_POLICIES[name](**kwargs)
