"""Workload arrival processes and reproducible trace record/replay.

"No DNN Left Behind" (arXiv:1901.06887) argues that cloud multi-tenant
ML needs a runtime evaluated under realistic arrival processes, not a
fixed batch of jobs.  :class:`WorkloadGenerator` produces tenant
arrival / job submission / tenant departure streams (Poisson or
deterministic inter-arrivals), and :class:`WorkloadTrace` freezes any
generated stream as JSONL so a simulated run is reproducible and
diffable: the same trace replayed through the same
:class:`~repro.runtime.kernel.ClusterRuntime` yields a bit-for-bit
identical event log.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.datasets.base import ModelSelectionDataset
from repro.runtime.kernel import ClusterRuntime
from repro.utils.rng import RandomState, SeedLike

#: The three things that can happen in a workload stream.
_ACTIONS = ("arrive", "submit", "depart")


@dataclass(frozen=True)
class WorkloadItem:
    """One workload occurrence: a tenant arrival, job, or departure."""

    time: float
    action: str
    user: int
    model: Optional[int] = None
    gpu_time: Optional[float] = None
    reward: Optional[float] = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if self.action == "submit" and (
            self.model is None or self.gpu_time is None
        ):
            raise ValueError("submit items need a model and a gpu_time")

    def to_dict(self) -> Dict:
        out = {"time": self.time, "action": self.action, "user": self.user}
        if self.model is not None:
            out["model"] = self.model
        if self.gpu_time is not None:
            out["gpu_time"] = self.gpu_time
        if self.reward is not None:
            out["reward"] = self.reward
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "WorkloadItem":
        return cls(
            time=float(data["time"]),
            action=str(data["action"]),
            user=int(data["user"]),
            model=None if data.get("model") is None else int(data["model"]),
            gpu_time=(
                None if data.get("gpu_time") is None
                else float(data["gpu_time"])
            ),
            reward=(
                None if data.get("reward") is None else float(data["reward"])
            ),
        )


class WorkloadTrace:
    """An ordered, serialisable sequence of :class:`WorkloadItem`."""

    def __init__(self, items: Sequence[WorkloadItem]) -> None:
        self.items = list(items)
        for earlier, later in zip(self.items, self.items[1:]):
            if later.time < earlier.time:
                raise ValueError(
                    f"trace items out of order: t={later.time} follows "
                    f"t={earlier.time}"
                )

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[WorkloadItem]:
        return iter(self.items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkloadTrace):
            return NotImplemented
        return self.items == other.items

    @property
    def n_jobs(self) -> int:
        return sum(1 for item in self.items if item.action == "submit")

    def users(self) -> List[int]:
        """Distinct users appearing in the trace, ascending."""
        return sorted({item.user for item in self.items})

    def membership(self) -> "WorkloadTrace":
        """Just the tenant arrival/departure items, as a sub-trace.

        This is the schedule :meth:`~repro.runtime.oracle.
        AsyncClusterOracle.run_concurrent` consumes: membership changes
        come from the trace while job submissions come from the live
        scheduler.
        """
        return WorkloadTrace(
            [item for item in self.items if item.action != "submit"]
        )

    # ------------------------------------------------------------------
    # JSONL record / replay
    # ------------------------------------------------------------------
    def dumps(self) -> str:
        """Serialise as JSONL (one item per line, sorted keys)."""
        return "".join(
            json.dumps(item.to_dict(), sort_keys=True) + "\n"
            for item in self.items
        )

    @classmethod
    def loads(cls, text: str) -> "WorkloadTrace":
        items = [
            WorkloadItem.from_dict(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]
        return cls(items)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.dumps(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WorkloadTrace":
        return cls.loads(Path(path).read_text(encoding="utf-8"))

    def schedule_on(self, runtime: ClusterRuntime) -> None:
        """Queue every trace item on a runtime (does not run it)."""
        for item in self.items:
            if item.action == "arrive":
                runtime.user_arrives(item.user, time=item.time)
            elif item.action == "depart":
                runtime.user_departs(item.user, time=item.time)
            else:
                runtime.submit(
                    item.user,
                    item.model,
                    item.gpu_time,
                    0.0 if item.reward is None else item.reward,
                    time=item.time,
                )


def replay_trace(
    trace: WorkloadTrace, runtime: ClusterRuntime
) -> ClusterRuntime:
    """Schedule a trace on ``runtime`` and run it to completion."""
    trace.schedule_on(runtime)
    runtime.run_until_idle()
    return runtime


class WorkloadGenerator:
    """Sample tenant arrival / job submission / departure streams.

    Parameters
    ----------
    n_users:
        Tenant population size; each job is attributed to a uniformly
        random tenant.
    arrival:
        ``"poisson"`` — exponential job inter-arrival times with rate
        ``rate``; ``"deterministic"`` — exact ``1/rate`` spacing.
    rate:
        Mean job arrivals per unit of simulated time.
    quality, cost:
        Optional ``(n_users, n_models)`` matrices (e.g. a Figure 8
        dataset): submitted jobs draw a uniform model and take its
        profiled cost as ``gpu_time`` and its accuracy as ``reward``.
        Without matrices, ``gpu_time`` is lognormal around
        ``gpu_time_mean`` and rewards are uniform in [0, 1].
    departure_delay:
        When set, each tenant departs this long after their last job's
        arrival (exercising the cancellation path).
    seed:
        Everything is drawn from one seeded generator, so the same
        configuration always yields the same trace.
    """

    def __init__(
        self,
        n_users: int,
        *,
        arrival: str = "poisson",
        rate: float = 1.0,
        quality: Optional[np.ndarray] = None,
        cost: Optional[np.ndarray] = None,
        gpu_time_mean: float = 1.0,
        departure_delay: Optional[float] = None,
        seed: SeedLike = None,
    ) -> None:
        if n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {n_users}")
        if arrival not in ("poisson", "deterministic"):
            raise ValueError(
                f"arrival must be 'poisson' or 'deterministic', "
                f"got {arrival!r}"
            )
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if (quality is None) != (cost is None):
            raise ValueError("provide both quality and cost, or neither")
        self.n_users = int(n_users)
        self.arrival = arrival
        self.rate = float(rate)
        self.quality = None if quality is None else np.asarray(quality, float)
        self.cost = None if cost is None else np.asarray(cost, float)
        if self.quality is not None and (
            self.quality.shape != self.cost.shape
            or self.quality.shape[0] != self.n_users
        ):
            raise ValueError(
                "quality and cost must both be (n_users, n_models), got "
                f"{self.quality.shape} and {self.cost.shape}"
            )
        self.gpu_time_mean = float(gpu_time_mean)
        self.departure_delay = (
            None if departure_delay is None else float(departure_delay)
        )
        self._rng = RandomState(seed)

    @classmethod
    def from_dataset(
        cls,
        dataset: ModelSelectionDataset,
        *,
        arrival: str = "poisson",
        rate: float = 1.0,
        departure_delay: Optional[float] = None,
        seed: SeedLike = None,
    ) -> "WorkloadGenerator":
        """A generator whose jobs replay a Figure 8 dataset's matrices."""
        return cls(
            dataset.n_users,
            arrival=arrival,
            rate=rate,
            quality=dataset.quality,
            cost=dataset.cost,
            departure_delay=departure_delay,
            seed=seed,
        )

    def generate(self, n_jobs: int) -> WorkloadTrace:
        """Sample a trace containing exactly ``n_jobs`` submissions."""
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        items: List[WorkloadItem] = []
        seen_users: set = set()
        last_submit: Dict[int, float] = {}
        t = 0.0
        for _ in range(n_jobs):
            if self.arrival == "poisson":
                t += float(self._rng.exponential(1.0 / self.rate))
            else:
                t += 1.0 / self.rate
            user = int(self._rng.integers(self.n_users))
            if user not in seen_users:
                seen_users.add(user)
                items.append(WorkloadItem(time=t, action="arrive", user=user))
            if self.quality is not None:
                model = int(self._rng.integers(self.quality.shape[1]))
                gpu_time = float(self.cost[user, model])
                reward = float(self.quality[user, model])
            else:
                model = int(self._rng.integers(8))
                gpu_time = float(
                    self.gpu_time_mean * self._rng.lognormal(0.0, 0.5)
                )
                reward = float(self._rng.uniform())
            items.append(
                WorkloadItem(
                    time=t, action="submit", user=user, model=model,
                    gpu_time=gpu_time, reward=reward,
                )
            )
            last_submit[user] = t
        if self.departure_delay is not None:
            departures = sorted(
                (last + self.departure_delay, user)
                for user, last in last_submit.items()
            )
            items.extend(
                WorkloadItem(time=when, action="depart", user=user)
                for when, user in departures
            )
            # Departures can interleave with later submissions; restore
            # time order (stable, so same-time items keep insertion
            # order: arrive < submit < depart).
            items.sort(key=lambda item: item.time)
        return WorkloadTrace(items)
