"""Async execution driver: the scheduler keeps dispatching while jobs run.

The seed's :class:`~repro.engine.simulator.ClusterOracle` executes one
job per ``observe`` call, so the multi-tenant loop only ever sees a
fully synchronous cluster.  :class:`AsyncClusterOracle` runs the same
trainer through the event-driven :class:`ClusterRuntime` instead:
``run_concurrent`` drives a :class:`MultiTenantScheduler`'s pickers
directly, submitting new jobs whenever dispatch slots are free and
feeding observations back *in completion order* — which, under
concurrent placement policies, is not submission order.  That is the
regime where GREEDY/HYBRID user-picking meets genuine cluster
concurrency (queueing delay, out-of-order returns, stale confidence
bounds at dispatch time).

``observe`` still satisfies the synchronous :class:`RewardOracle`
contract (submit one job, run the kernel until it completes), so the
class drops into every existing harness unchanged.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.model_picking import ModelPicker
from repro.core.multitenant import MultiTenantScheduler, RunResult, StepRecord
from repro.core.oracles import Observation, RewardOracle
from repro.engine.clock import SimClock
from repro.engine.cluster import GPUPool
from repro.engine.events import EventKind, EventLog
from repro.engine.jobs import Job, JobState
from repro.engine.trainer import Trainer
from repro.runtime.kernel import ClusterRuntime
from repro.runtime.placement import PlacementPolicy


class AsyncClusterOracle(RewardOracle):
    """RewardOracle executing jobs on the event-driven runtime.

    Parameters
    ----------
    trainer:
        Produces ``(reward, gpu_time)`` pairs.  Training outcomes are
        computed at dispatch (trace-replay style) and revealed to the
        scheduler only when the simulated job completes.
    pool, policy, clock, log, preemption_overhead:
        Forwarded to the underlying :class:`ClusterRuntime`.
    max_in_flight:
        Dispatch-ahead window for ``run_concurrent`` (default: one job
        per tenant, capped by pool size).
    """

    def __init__(
        self,
        trainer: Trainer,
        pool: Optional[GPUPool] = None,
        policy: Optional[PlacementPolicy] = None,
        *,
        clock: Optional[SimClock] = None,
        log: Optional[EventLog] = None,
        preemption_overhead: float = 0.0,
        max_in_flight: Optional[int] = None,
    ) -> None:
        self.trainer = trainer
        self.runtime = ClusterRuntime(
            pool, policy, clock=clock, log=log,
            preemption_overhead=preemption_overhead,
        )
        self.pool = self.runtime.pool
        self.clock = self.runtime.clock
        self.log = self.runtime.log
        if max_in_flight is not None and int(max_in_flight) < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.max_in_flight = (
            None if max_in_flight is None else int(max_in_flight)
        )
        #: Dispatches skipped because the picked tenant was busy.
        self.stalled_picks = 0
        # A busy-tenant pick deferred across run_concurrent calls, so
        # budget-bounded runs never drop a stateful picker's choice.
        self._deferred_user: Optional[int] = None
        # Membership wiring: while run_concurrent is live, kernel
        # USER_ARRIVED / USER_DEPARTED events call back into the
        # scheduler's registry through these hooks.
        self._membership_ctx: Optional[
            Tuple[MultiTenantScheduler, Optional[Callable[[int], ModelPicker]]]
        ] = None
        # Absorption observers: each completed job fed back into a
        # scheduler is announced here, *after* its StepRecord landed.
        # The durable control plane (repro.persist) journals these so
        # replay re-absorbs completions in the exact original order.
        self._absorb_callbacks: List[Callable[[Job], None]] = []
        self.runtime.on_arrival(self._handle_arrival)
        self.runtime.on_departure(self._handle_departure)

    # ------------------------------------------------------------------
    # Membership callbacks (fired by the kernel's event handlers)
    # ------------------------------------------------------------------
    def _handle_arrival(self, user: int) -> None:
        ctx = self._membership_ctx
        if ctx is None:
            return
        scheduler, picker_factory = ctx
        if scheduler.tenants.is_active(user):
            return
        if scheduler.tenants.is_known(user):
            scheduler.add_tenant(tenant_id=user)  # returning tenant
            return
        if picker_factory is None:
            raise RuntimeError(
                f"tenant {user} arrived but run_concurrent was given no "
                "picker_factory to build its model picker"
            )
        scheduler.add_tenant(picker_factory(user), tenant_id=user)

    def _handle_departure(self, user: int) -> None:
        ctx = self._membership_ctx
        if ctx is None:
            return
        scheduler, _ = ctx
        if scheduler.tenants.is_active(user):
            scheduler.retire_tenant(user)

    # ------------------------------------------------------------------
    # RewardOracle interface (synchronous fallback)
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return self.trainer.n_users

    def n_models(self, user: int) -> int:
        return self.trainer.n_models(user)

    def costs(self, user: int) -> np.ndarray:
        # Same planning convention as the synchronous ClusterOracle:
        # profiled GPU-time under the full-pool speedup.  Policies that
        # slice the pool change realised durations, not the (relative)
        # planning costs GP-UCB consumes.
        return self.trainer.expected_costs(user) / self.pool.speedup()

    def add_user(self, *args, **kwargs) -> int:
        """Grow the tenant set by delegating to the trainer's rows."""
        add = getattr(self.trainer, "add_user", None)
        if add is None:
            raise NotImplementedError(
                f"{type(self.trainer).__name__} cannot grow rows for "
                "late arrivals"
            )
        return add(*args, **kwargs)

    def observe(self, user: int, model: int) -> Observation:
        """Submit one job and run the kernel until it completes."""
        self._check_pair(user, model)
        try:
            reward, gpu_time = self.trainer.train(user, model)
        except Exception as exc:
            # Training is computed at dispatch, so the failure happens
            # before any Job exists; job_id is None (never absent) to
            # keep the JOB_FAILED payload schema uniform.
            self.log.append(
                self.clock.now, EventKind.JOB_FAILED, job_id=None,
                user=user, model=model, reason=str(exc),
            )
            raise
        job = self.runtime.submit(user, model, gpu_time, reward)
        while job.state not in (JobState.FINISHED, JobState.FAILED):
            if not self.runtime.queue:
                raise RuntimeError(
                    f"runtime stalled before job {job.job_id} completed "
                    f"(policy {self.runtime.policy.name!r} never "
                    "allocated it devices)"
                )
            self.runtime.step()
        self.log.append(
            self.clock.now, EventKind.MODEL_RETURNED, user=user,
            model=model, reward=job.reward,
        )
        return Observation(float(job.reward), self._service_time(job))

    # ------------------------------------------------------------------
    # The concurrent driver
    # ------------------------------------------------------------------
    def run_concurrent(
        self,
        scheduler: MultiTenantScheduler,
        *,
        max_jobs: Optional[int] = None,
        cost_budget: Optional[float] = None,
        max_in_flight: Optional[int] = None,
        arrivals: Optional[Iterable] = None,
        picker_factory: Optional[Callable[[int], ModelPicker]] = None,
    ) -> RunResult:
        """Drive the scheduler with out-of-order completions and churn.

        Dispatch: while fewer than ``max_in_flight`` jobs are in
        flight (and budgets permit), ask the user picker for a tenant
        and its model picker for an arm, then submit the job to the
        runtime.  A tenant keeps at most one job in flight — if the
        picker selects a busy tenant, that pick is *deferred* (not
        discarded, so stateful pickers like ROUNDROBIN keep their
        documented sequence) and dispatch pauses until the next
        completion (counted in :attr:`stalled_picks`).

        Completion: each finished job is fed back exactly like a
        synchronous :meth:`MultiTenantScheduler.step` — picker
        observation, the Algorithm 2 line-6 recurrence, a
        :class:`StepRecord` (with the job's *service time* as cost) and
        the user picker's ``notify`` hook — but in completion order.

        Membership: ``arrivals`` is an optional schedule of tenant
        ``arrive`` / ``depart`` :class:`~repro.runtime.workload.
        WorkloadItem` entries (e.g. ``WorkloadTrace.membership()``);
        job submissions come from the live scheduler, never the trace.
        Each item is queued as a kernel ``USER_ARRIVED`` /
        ``USER_DEPARTED`` event at its trace time, and when the kernel
        processes it the membership flows back into the scheduler: an
        unknown arriving tenant is admitted with a picker from
        ``picker_factory(user)`` (a known retired one resumes with its
        history), and a departing tenant is retired — its queued jobs
        are cancelled by the kernel, its running jobs drain and are
        absorbed normally, and its share of the pool is released to the
        survivors at the next re-cut.  The run may even start with an
        empty active set; dispatch begins at the first arrival.

        ``max_jobs`` counts new dispatches in this call;
        ``cost_budget`` is an absolute ceiling on the scheduler's
        cumulative cost.  Membership events scheduled beyond the point
        where the budget runs out stay queued for a later call.
        Returns a :class:`RunResult` covering the records appended by
        this call.
        """
        if max_jobs is None and cost_budget is None:
            raise ValueError("provide max_jobs and/or cost_budget")
        if scheduler.oracle is not self:
            raise ValueError(
                "scheduler was built against a different oracle"
            )
        if arrivals is not None:
            for item in arrivals:
                if item.action == "submit":
                    raise ValueError(
                        "the arrivals schedule is membership-only; got a "
                        "'submit' item (pass trace.membership(), not the "
                        "full trace)"
                    )
                when = max(float(item.time), self.clock.now)
                if item.action == "arrive":
                    self.runtime.user_arrives(item.user, time=when)
                else:
                    self.runtime.user_departs(item.user, time=when)
        records_before = len(scheduler.records)
        in_flight = {}  # job_id -> (tenant, selection)
        busy_users = set()
        dispatched = 0

        def window() -> int:
            if max_in_flight is not None:
                return max_in_flight
            if self.max_in_flight is not None:
                return self.max_in_flight
            return max(1, min(scheduler.n_users, self.pool.n_gpus))

        def may_dispatch() -> bool:
            if len(in_flight) >= window():
                return False
            if max_jobs is not None and dispatched >= max_jobs:
                return False
            if cost_budget is not None and (
                scheduler.total_cost >= cost_budget
            ):
                return False
            return True

        def scrub_cancelled() -> bool:
            """Drop in-flight jobs a departure cancelled; free slots."""
            cancelled = [
                jid for jid in in_flight
                if self.runtime.jobs[jid].state is JobState.FAILED
            ]
            for jid in cancelled:
                in_flight.pop(jid)
                busy_users.discard(self.runtime.jobs[jid].user)
            return bool(cancelled)

        self._membership_ctx = (scheduler, picker_factory)
        try:
            while True:
                while scheduler.n_users > 0 and may_dispatch():
                    if self._deferred_user is not None:
                        user, self._deferred_user = self._deferred_user, None
                        if not scheduler.tenants.is_active(user):
                            continue  # deferred tenant has departed
                    else:
                        user = scheduler.user_picker.pick(scheduler)
                    if not scheduler.tenants.is_active(user):
                        raise IndexError(
                            f"user picker returned {user}, which is not an "
                            f"active tenant (active: "
                            f"{scheduler.active_ids()})"
                        )
                    if user in busy_users:
                        self._deferred_user = user
                        self.stalled_picks += 1
                        break
                    tenant = scheduler.tenants[user]
                    selection = tenant.picker.select()
                    reward, gpu_time = self.trainer.train(
                        user, selection.arm
                    )
                    job = self.runtime.submit(
                        user, selection.arm, gpu_time, reward
                    )
                    in_flight[job.job_id] = (tenant, selection)
                    busy_users.add(user)
                    dispatched += 1
                if in_flight:
                    completed: List[Job] = []
                    freed = False
                    while self.runtime.queue and not completed and not freed:
                        completed = self.runtime.step()
                        freed = scrub_cancelled()
                    if not completed and not freed and in_flight:
                        raise RuntimeError(
                            f"runtime stalled with {len(in_flight)} jobs "
                            f"in flight (policy "
                            f"{self.runtime.policy.name!r})"
                        )
                    for job in completed:
                        if job.job_id not in in_flight:
                            continue
                        tenant, selection = in_flight.pop(job.job_id)
                        busy_users.discard(job.user)
                        self.absorb(scheduler, tenant, selection, job)
                    continue
                if (
                    may_dispatch()
                    and scheduler.n_users == 0
                    and self.runtime.queue
                ):
                    # Nobody to serve yet (or everybody left): advance
                    # to the next membership event.
                    self.runtime.step()
                    continue
                break
        finally:
            self._membership_ctx = None
        return RunResult(
            records=list(scheduler.records[records_before:]),
            n_users=scheduler.n_known,
        )

    def absorb(
        self,
        scheduler: MultiTenantScheduler,
        tenant,
        selection,
        job: Job,
    ) -> None:
        """Feed one completed job back into the scheduler state.

        Exactly what a synchronous :meth:`MultiTenantScheduler.step`
        does after its oracle call — picker observation, the
        Algorithm 2 line-6 recurrence, a :class:`StepRecord` with the
        job's service time as cost, and the user picker's ``notify``
        hook.  External drivers (the service gateway) call this once
        per completion, in completion order.
        """
        cost = self._service_time(job)
        tenant.picker.observe(selection.arm, job.reward)
        tenant.absorb(
            selection, job.reward, cost,
            clamp_potential=scheduler.clamp_potential,
        )
        # This path bypasses scheduler.step(), so the decision cache
        # must be told the tenant's σ̃ / best-observed / best-UCB moved.
        scheduler.invalidate_tenant(tenant.index)
        scheduler.step_count += 1
        scheduler.total_cost += cost
        record = StepRecord(
            t=scheduler.step_count,
            user=tenant.index,
            arm=selection.arm,
            reward=job.reward,
            cost=cost,
            cumulative_cost=scheduler.total_cost,
            ucb_value=selection.ucb_value,
            sigma_tilde=tenant.sigma_tilde,
        )
        scheduler.records.append(record)
        self.log.append(
            self.clock.now, EventKind.MODEL_RETURNED, user=tenant.index,
            model=selection.arm, reward=job.reward,
        )
        scheduler.user_picker.notify(scheduler, record)
        for callback in self._absorb_callbacks:
            callback(job)

    def on_absorb(self, callback: Callable[[Job], None]) -> None:
        """Register a callback fired after each completion is absorbed."""
        self._absorb_callbacks.append(callback)

    @staticmethod
    def _service_time(job: Job) -> float:
        """Wall-clock the job spent from first start to completion."""
        if job.start_time is None or job.end_time is None:
            return 0.0
        return float(job.end_time - job.start_time)

    def finished_jobs(self) -> List[Job]:
        return self.runtime.finished_jobs()
