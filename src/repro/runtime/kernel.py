"""The discrete-event cluster runtime: concurrent jobs on shared GPUs.

:class:`ClusterRuntime` replaces the seed's synchronous one-job-at-a-
time execution with a real event kernel: submissions, completions and
tenant arrivals/departures are :class:`~repro.runtime.queue.EventQueue`
entries; a pluggable :class:`~repro.runtime.placement.PlacementPolicy`
decides which jobs hold which share of the
:class:`~repro.engine.cluster.GPUPool` at every scheduling point; and
jobs are preemptible — when the policy shrinks or revokes a running
job's allocation, its progress is banked (``Job.work_done``), the job
is preempted, and it later resumes with only its remaining GPU-time.

Every state change lands in the shared :class:`EventLog`, so a run is
fully reconstructible (and, because the kernel is deterministic,
bit-for-bit reproducible from a recorded workload trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.engine.clock import SimClock
from repro.engine.cluster import GPUPool
from repro.engine.events import EventKind, EventLog
from repro.engine.jobs import Job, JobState
from repro.runtime.placement import PlacementPolicy, SingleDevicePlacement
from repro.runtime.queue import EventQueue, ScheduledEvent

#: Queue event kinds the kernel itself understands.
_KERNEL_KINDS = (
    EventKind.JOB_SUBMITTED,
    EventKind.JOB_FINISHED,
    EventKind.USER_ARRIVED,
    EventKind.USER_DEPARTED,
)


@dataclass
class _Slice:
    """One contiguous execution slice of a running job."""

    job: Job
    n_gpus: int
    resumed_at: float
    epoch: int


class ClusterRuntime:
    """Event-driven executor multiplexing many jobs over one GPU pool.

    Parameters
    ----------
    pool:
        The shared devices.
    policy:
        Placement policy (default: the paper's single-device
        discipline).
    clock, log:
        Optionally shared with an outer system (e.g. the platform
        server), so runtime events interleave with application events
        on one timeline.
    preemption_overhead:
        Single-GPU work units a job *loses* every time it is
        preempted (checkpoint/restore cost).  The default 0 keeps
        preemption free — which flatters preemption-happy policies
        like the Dorm-style dynamic partition; realistic values make
        the throughput/adaptivity trade-off visible.
    """

    def __init__(
        self,
        pool: Optional[GPUPool] = None,
        policy: Optional[PlacementPolicy] = None,
        *,
        clock: Optional[SimClock] = None,
        log: Optional[EventLog] = None,
        preemption_overhead: float = 0.0,
    ) -> None:
        self.pool = pool if pool is not None else GPUPool()
        self.policy = policy if policy is not None else SingleDevicePlacement()
        self.preemption_overhead = float(preemption_overhead)
        if self.preemption_overhead < 0:
            raise ValueError(
                f"preemption_overhead must be >= 0, got "
                f"{self.preemption_overhead}"
            )
        self.clock = clock if clock is not None else SimClock()
        self.log = log if log is not None else EventLog()
        self.queue = EventQueue(start=self.clock.now)
        self.jobs: List[Job] = []
        self.active_users: set = set()
        self._pending: List[int] = []
        self._running: Dict[int, _Slice] = {}
        self._arrival_order: Dict[int, int] = {}
        self._arrival_counter = 0
        self._epochs: Dict[int, int] = {}
        self._rewards: Dict[int, float] = {}
        self._completion_callbacks: List[Callable[[Job], None]] = []
        self._arrival_callbacks: List[Callable[[int], None]] = []
        self._departure_callbacks: List[Callable[[int], None]] = []
        self.preemption_count = 0
        self._handlers = {
            EventKind.JOB_SUBMITTED: self._on_submitted,
            EventKind.JOB_FINISHED: self._on_completion,
            EventKind.USER_ARRIVED: self._on_arrival,
            EventKind.USER_DEPARTED: self._on_departure,
        }
        self.bind_metrics(None)

    def bind_metrics(self, registry) -> None:
        """Report kernel event throughput into a metrics registry.

        ``registry`` is a :class:`repro.obs.MetricsRegistry` (or None
        to unbind — instruments revert to shared no-ops).  Kept as a
        local import so the runtime stays importable standalone.
        """
        from repro.obs.metrics import NULL_REGISTRY

        registry = registry if registry is not None else NULL_REGISTRY
        self._m_events = registry.counter(
            "kernel_events_total",
            "Kernel events processed, by kind.",
            ["kind"],
        )
        self._m_queue_depth = registry.gauge(
            "kernel_event_queue_depth",
            "Events waiting in the kernel's event queue.",
        )

    # ------------------------------------------------------------------
    # Submitting work
    # ------------------------------------------------------------------
    def submit(
        self,
        user: int,
        model: int,
        gpu_time: float,
        reward: float = 0.0,
        *,
        time: Optional[float] = None,
    ) -> Job:
        """Schedule a job submission at ``time`` (default: now).

        ``reward`` is the accuracy the job will report on completion —
        precomputed for trace replay, where training outcomes are known
        up front (the paper's own evaluation protocol).
        """
        when = self.clock.now if time is None else float(time)
        gpu_time = float(gpu_time)
        if gpu_time < 0:
            raise ValueError(f"gpu_time must be >= 0, got {gpu_time}")
        job = Job(
            job_id=len(self.jobs),
            user=int(user),
            model=int(model),
            submit_time=when,
            gpu_time=gpu_time,
        )
        self.jobs.append(job)
        self._rewards[job.job_id] = float(reward)
        self.queue.push(when, EventKind.JOB_SUBMITTED, job_id=job.job_id)
        return job

    def user_arrives(self, user: int, *, time: Optional[float] = None) -> None:
        """Schedule a tenant arrival."""
        when = self.clock.now if time is None else float(time)
        self.queue.push(when, EventKind.USER_ARRIVED, user=int(user))

    def user_departs(self, user: int, *, time: Optional[float] = None) -> None:
        """Schedule a tenant departure (queued jobs are cancelled)."""
        when = self.clock.now if time is None else float(time)
        self.queue.push(when, EventKind.USER_DEPARTED, user=int(user))

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def step(self) -> List[Job]:
        """Process the next queued event; return jobs it completed."""
        if not self.queue:
            return []
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        handler = self._handlers.get(event.kind)
        if handler is None:
            raise ValueError(
                f"the kernel cannot handle {event.kind.value!r} events; "
                f"expected one of {[k.value for k in _KERNEL_KINDS]}"
            )
        self._m_events.labels(event.kind.value).inc()
        self._m_queue_depth.set(len(self.queue))
        return handler(event)

    def run_until_next_completion(self) -> List[Job]:
        """Advance until at least one job completes (or events run out)."""
        completed: List[Job] = []
        while self.queue and not completed:
            completed = self.step()
        return completed

    def run_until_idle(self) -> List[Job]:
        """Drain the event queue; return every job completed on the way."""
        completed: List[Job] = []
        while self.queue:
            completed.extend(self.step())
        return completed

    def run_until(self, horizon: float) -> List[Job]:
        """Process all events at or before ``horizon``."""
        horizon = float(horizon)
        completed: List[Job] = []
        while self.queue:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > horizon:
                break
            completed.extend(self.step())
        if self.clock.now < horizon:
            self.clock.advance_to(horizon)
        return completed

    def on_completion(self, callback: Callable[[Job], None]) -> None:
        """Register a callback fired after each job completes."""
        self._completion_callbacks.append(callback)

    def on_arrival(self, callback: Callable[[int], None]) -> None:
        """Register a callback fired when a ``USER_ARRIVED`` event lands.

        This is the hook that lets the kernel's membership events reach
        a live scheduler: :class:`~repro.runtime.oracle.
        AsyncClusterOracle` wires it to
        :meth:`~repro.core.multitenant.MultiTenantScheduler.add_tenant`.
        """
        self._arrival_callbacks.append(callback)

    def on_departure(self, callback: Callable[[int], None]) -> None:
        """Register a callback fired when a ``USER_DEPARTED`` event lands
        (after the departed tenant's queued jobs are cancelled)."""
        self._departure_callbacks.append(callback)

    def cancel(self, job_id: int, *, reason: str = "cancelled") -> bool:
        """Cancel one non-terminal job immediately (no queued event).

        Pending and preempted jobs leave the queue; a running job's
        slice is torn down (its stale completion event is ignored via
        the epoch check) and its devices return to the pool at the
        reschedule.  Returns False when the job is already terminal.
        Used by crash recovery's mark-lost policy — a departure-style
        cancellation that does *not* retire the owning tenant.
        """
        job = self.jobs[int(job_id)]
        if job.state in (JobState.FINISHED, JobState.FAILED):
            return False
        if job.job_id in self._running:
            slice_ = self._running.pop(job.job_id)
            job.account_progress(
                (self.clock.now - slice_.resumed_at)
                * self.pool.speedup(slice_.n_gpus)
            )
        if job.job_id in self._pending:
            self._pending.remove(job.job_id)
        job.fail(self.clock.now, reason=reason)
        self.log.append(
            self.clock.now, EventKind.JOB_FAILED, job_id=job.job_id,
            user=job.user, model=job.model, reason=reason,
        )
        if job.job_id in self._arrival_order:
            self._reschedule()
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def running_jobs(self) -> List[Job]:
        """Jobs currently holding devices, in FIFO arrival order."""
        return self._fifo([s.job for s in self._running.values()])

    @property
    def pending_jobs(self) -> List[Job]:
        """Queued (pending or preempted) jobs, in FIFO arrival order."""
        return self._fifo([self.jobs[jid] for jid in self._pending])

    @property
    def gpus_in_use(self) -> int:
        return sum(s.n_gpus for s in self._running.values())

    @property
    def is_idle(self) -> bool:
        return not self.queue and not self._running and not self._pending

    def finished_jobs(self) -> List[Job]:
        return [j for j in self.jobs if j.state is JobState.FINISHED]

    def failed_jobs(self) -> List[Job]:
        return [j for j in self.jobs if j.state is JobState.FAILED]

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_submitted(self, event: ScheduledEvent) -> List[Job]:
        job = self.jobs[event.payload["job_id"]]
        if job.state is not JobState.PENDING:
            # Cancelled between submission and admission (recovery's
            # mark-lost policy): the job never joins the queue.
            return []
        self._arrival_order[job.job_id] = self._arrival_counter
        self._arrival_counter += 1
        self._pending.append(job.job_id)
        self.active_users.add(job.user)
        self.log.append(
            self.clock.now, EventKind.JOB_SUBMITTED, job_id=job.job_id,
            user=job.user, model=job.model, gpu_time=job.gpu_time,
        )
        self._reschedule()
        return []

    def _on_arrival(self, event: ScheduledEvent) -> List[Job]:
        user = event.payload["user"]
        self.active_users.add(user)
        self.log.append(self.clock.now, EventKind.USER_ARRIVED, user=user)
        for callback in self._arrival_callbacks:
            callback(user)
        self._reschedule()
        return []

    def _on_departure(self, event: ScheduledEvent) -> List[Job]:
        user = event.payload["user"]
        self.active_users.discard(user)
        self.log.append(self.clock.now, EventKind.USER_DEPARTED, user=user)
        # Cancel the departed tenant's queued jobs; running jobs are
        # allowed to drain (their results land through the normal
        # completion path).  The reschedule below releases the
        # departed tenant's share of the pool to the survivors —
        # partition-style policies re-cut on the new membership.
        for jid in [j for j in self._pending if self.jobs[j].user == user]:
            self._pending.remove(jid)
            job = self.jobs[jid]
            job.fail(self.clock.now, reason="user departed")
            self.log.append(
                self.clock.now, EventKind.JOB_FAILED, job_id=jid,
                user=job.user, model=job.model, reason="user departed",
            )
        for callback in self._departure_callbacks:
            callback(user)
        self._reschedule()
        return []

    def _on_completion(self, event: ScheduledEvent) -> List[Job]:
        jid = event.payload["job_id"]
        epoch = event.payload["epoch"]
        slice_ = self._running.get(jid)
        if slice_ is None or slice_.epoch != epoch:
            # Stale completion: the job was preempted/resized after
            # this event was scheduled.  The reschedule that did so
            # queued a fresh completion under a newer epoch.
            return []
        del self._running[jid]
        job = slice_.job
        job.account_progress(
            (self.clock.now - slice_.resumed_at)
            * self.pool.speedup(slice_.n_gpus)
        )
        job.finish(self.clock.now, self._rewards[jid])
        self.log.append(
            self.clock.now, EventKind.JOB_FINISHED, job_id=jid,
            user=job.user, model=job.model, reward=job.reward,
            n_gpus=slice_.n_gpus, duration=job.duration,
            preemptions=job.preemptions,
        )
        self._reschedule()
        for callback in self._completion_callbacks:
            callback(job)
        return [job]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _fifo(self, jobs: List[Job]) -> List[Job]:
        return sorted(jobs, key=lambda j: self._arrival_order[j.job_id])

    def _schedulable(self) -> List[Job]:
        return self._fifo(
            [s.job for s in self._running.values()]
            + [self.jobs[jid] for jid in self._pending]
        )

    def _reschedule(self) -> None:
        jobs = self._schedulable()
        current = {jid: s.n_gpus for jid, s in self._running.items()}
        desired = self.policy.allocate(jobs, current, self.pool)
        self._validate_allocation(desired, jobs)
        # Preempt running jobs whose allocation changed or vanished.
        for jid in sorted(self._running):
            want = int(desired.get(jid, 0))
            if want != self._running[jid].n_gpus:
                self._pause(jid, requeued=want == 0)
        # Start (or resume) everything that should now hold devices.
        for jid in sorted(desired, key=self._arrival_order.__getitem__):
            if int(desired[jid]) > 0 and jid not in self._running:
                self._start_slice(jid, int(desired[jid]))

    def _validate_allocation(
        self, desired: Dict[int, int], jobs: List[Job]
    ) -> None:
        schedulable = {job.job_id for job in jobs}
        total = 0
        for jid, n_gpus in desired.items():
            if jid not in schedulable:
                raise ValueError(
                    f"policy allocated devices to job {jid}, which is "
                    "not schedulable"
                )
            if int(n_gpus) < 0:
                raise ValueError(
                    f"policy allocated {n_gpus} GPUs to job {jid}"
                )
            total += int(n_gpus)
        if total > self.pool.n_gpus:
            raise ValueError(
                f"policy allocated {total} GPUs but the pool has "
                f"{self.pool.n_gpus}"
            )

    def _pause(self, jid: int, *, requeued: bool) -> None:
        slice_ = self._running.pop(jid)
        job = slice_.job
        job.account_progress(
            (self.clock.now - slice_.resumed_at)
            * self.pool.speedup(slice_.n_gpus)
        )
        # Checkpoint/restore is not free: charge the configured
        # overhead by un-banking completed work (never below zero, so
        # a job can always still finish).
        overhead = min(self.preemption_overhead, job.work_done)
        job.work_done -= overhead
        job.preempt(self.clock.now)
        self.preemption_count += 1
        self.log.append(
            self.clock.now, EventKind.JOB_PREEMPTED, job_id=jid,
            user=job.user, model=job.model,
            remaining_gpu_time=job.remaining_gpu_time,
            overhead=overhead,
        )
        self._pending.append(jid)
        if requeued:
            self.log.append(
                self.clock.now, EventKind.JOB_REQUEUED, job_id=jid,
                user=job.user, model=job.model,
            )

    def _start_slice(self, jid: int, n_gpus: int) -> None:
        self._pending.remove(jid)
        job = self.jobs[jid]
        resumed = job.state is JobState.PREEMPTED
        if resumed:
            job.resume(self.clock.now)
        else:
            job.start(self.clock.now)
        epoch = self._epochs.get(jid, 0) + 1
        self._epochs[jid] = epoch
        duration = job.remaining_gpu_time / self.pool.speedup(n_gpus)
        self.queue.push(
            self.clock.now + duration, EventKind.JOB_FINISHED,
            job_id=jid, epoch=epoch,
        )
        self._running[jid] = _Slice(job, n_gpus, self.clock.now, epoch)
        self.log.append(
            self.clock.now, EventKind.JOB_STARTED, job_id=jid,
            user=job.user, model=job.model, n_gpus=n_gpus, resumed=resumed,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterRuntime(policy={self.policy.name!r}, "
            f"running={len(self._running)}, pending={len(self._pending)}, "
            f"t={self.clock.now:.4g})"
        )
