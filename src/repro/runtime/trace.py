"""Execution-trace tooling: event-log JSONL and runtime metrics.

A :class:`~repro.engine.events.EventLog` produced by the runtime is the
authoritative record of a simulated run.  This module serialises logs
to JSONL (so two runs can be diffed line-by-line — replaying a recorded
workload trace must reproduce the execution log *bit for bit*) and
derives the two numbers the placement benchmark compares:

* **makespan** — when the last job finished;
* **time-averaged regret** — the paper's "average accuracy loss",
  integrated over the run: for each tenant, ``μ*_i − best_i(t)`` as a
  step function of completions, averaged over time and tenants.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.events import Event, EventKind, EventLog
from repro.errors import jsonify


def event_to_dict(event: Event) -> Dict:
    """A stable dict form of one event (used for JSONL lines)."""
    return {
        "time": jsonify(event.time),
        "kind": event.kind.value,
        "payload": jsonify(event.payload),
    }


def events_to_jsonl(
    log: EventLog,
    kinds: Optional[Sequence[EventKind]] = None,
) -> str:
    """Serialise a log (optionally only some kinds) as sorted-key JSONL."""
    events = log.filter(kinds) if kinds is not None else list(log)
    return "".join(
        json.dumps(event_to_dict(event), sort_keys=True) + "\n"
        for event in events
    )


def write_events_jsonl(
    log: EventLog,
    path: Union[str, Path],
    kinds: Optional[Sequence[EventKind]] = None,
) -> Path:
    """Write the JSONL form of a log to ``path``."""
    path = Path(path)
    path.write_text(events_to_jsonl(log, kinds), encoding="utf-8")
    return path


def read_events_jsonl(path: Union[str, Path]) -> List[Dict]:
    """Parse an events JSONL file back into dicts."""
    return [
        json.loads(line)
        for line in Path(path).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


@dataclass(frozen=True)
class TraceDivergence:
    """Where two event streams first disagree.

    ``index`` is the 0-based event position; ``left``/``right`` are the
    event dicts at that position (``None`` when one stream ended
    early); ``fields`` names the top-level keys that differ.
    """

    index: int
    left: Optional[Dict]
    right: Optional[Dict]
    fields: Tuple[str, ...]

    def describe(self) -> str:
        """A short human-readable first-divergence report."""
        lines = [f"first divergence at event #{self.index}"]
        if self.left is None:
            lines.append("  left:  <stream ended>")
        else:
            lines.append(f"  left:  {json.dumps(self.left, sort_keys=True)}")
        if self.right is None:
            lines.append("  right: <stream ended>")
        else:
            lines.append(f"  right: {json.dumps(self.right, sort_keys=True)}")
        if self.fields:
            lines.append(f"  differing fields: {', '.join(self.fields)}")
        return "\n".join(lines)


def first_divergence(
    left: Sequence[Dict], right: Sequence[Dict]
) -> Optional[TraceDivergence]:
    """First position where two event-dict streams differ, or ``None``.

    The streams compare equal only if they have the same length and
    every event dict matches exactly — the determinism contract the
    runtime makes for replayed traces.
    """
    for index, (a, b) in enumerate(zip(left, right)):
        if a != b:
            fields = tuple(
                sorted(
                    key
                    for key in set(a) | set(b)
                    if a.get(key) != b.get(key)
                )
            )
            return TraceDivergence(index, a, b, fields)
    if len(left) != len(right):
        index = min(len(left), len(right))
        return TraceDivergence(
            index,
            left[index] if index < len(left) else None,
            right[index] if index < len(right) else None,
            (),
        )
    return None


def diff_event_logs(
    left: Union[EventLog, Sequence[Dict]],
    right: Union[EventLog, Sequence[Dict]],
) -> Optional[TraceDivergence]:
    """Compare two logs (or pre-parsed event-dict lists)."""
    if isinstance(left, EventLog):
        left = [event_to_dict(e) for e in left]
    if isinstance(right, EventLog):
        right = [event_to_dict(e) for e in right]
    return first_divergence(left, right)


def diff_event_files(
    left: Union[str, Path], right: Union[str, Path]
) -> Optional[TraceDivergence]:
    """Compare two recorded event-log JSONL files."""
    return first_divergence(
        read_events_jsonl(left), read_events_jsonl(right)
    )


def makespan(log: EventLog) -> float:
    """Time of the last job completion (0.0 if nothing finished)."""
    finished = log.filter(EventKind.JOB_FINISHED)
    return float(finished[-1].time) if finished else 0.0


def completion_curve(log: EventLog, user: int) -> List[tuple]:
    """``(time, best reward so far)`` steps for one tenant."""
    best = 0.0
    curve = []
    for event in log.filter(EventKind.JOB_FINISHED, user=user):
        reward = float(event.payload.get("reward") or 0.0)
        if reward > best:
            best = reward
            curve.append((float(event.time), best))
    return curve


def time_averaged_regret(
    log: EventLog,
    best_qualities: Sequence[float],
    *,
    horizon: Optional[float] = None,
) -> float:
    """Mean over tenants of ``∫ (μ*_i − best_i(t)) dt / horizon``.

    ``best_qualities[i]`` is tenant ``i``'s best achievable accuracy
    (``μ*_i``); ``best_i(t)`` is the best accuracy tenant ``i`` holds
    at time ``t`` (0 before their first completion — the accuracy of
    "no model").  The default horizon is the log's makespan.
    """
    if horizon is None:
        horizon = makespan(log)
    horizon = float(horizon)
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    losses = []
    for user, target in enumerate(best_qualities):
        target = float(target)
        integral = 0.0
        prev_time, prev_best = 0.0, 0.0
        for time, best in completion_curve(log, user):
            if time >= horizon:
                break
            integral += (time - prev_time) * (target - prev_best)
            prev_time, prev_best = time, best
        integral += (horizon - prev_time) * (target - prev_best)
        losses.append(integral / horizon)
    return float(np.mean(losses)) if losses else 0.0
