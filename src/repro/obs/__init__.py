"""Observability plane: metrics registry, request tracing, access logs.

Zero-dependency (stdlib only) by design — the service must stay
installable with nothing but Python.  Three pieces:

* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry`
  (counters / gauges / fixed-bucket latency histograms, labelable,
  cardinality-guarded) with Prometheus-text and JSON exposition;
* :mod:`repro.obs.context` — the per-request :class:`RequestContext`
  (``request_id`` minted at the frontends, echoed as ``X-Request-ID``,
  propagated through the command queue into journal records);
* :mod:`repro.obs.logging` — opt-in structured access/event logging
  (:class:`AccessLogger`), human or JSON-lines.
"""

from repro.obs.context import (
    RequestContext,
    bind_request,
    clear_request,
    current_request,
    current_request_id,
    new_request_id,
    run_in_context,
)
from repro.obs.logging import NULL_ACCESS_LOG, AccessLogger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    PICK_LATENCY_BUCKETS,
    NULL_REGISTRY,
    OVERFLOW_LABEL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullInstrument,
)

__all__ = [
    "AccessLogger",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "PICK_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_ACCESS_LOG",
    "NULL_REGISTRY",
    "NullInstrument",
    "OVERFLOW_LABEL",
    "RequestContext",
    "bind_request",
    "clear_request",
    "current_request",
    "current_request_id",
    "new_request_id",
    "run_in_context",
]
