"""Observability plane: metrics, spans, SLOs, access logs.

Zero-dependency (stdlib only) by design — the service must stay
installable with nothing but Python.  Five pieces:

* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry`
  (counters / gauges / fixed-bucket latency histograms, labelable,
  cardinality-guarded) with Prometheus-text and JSON exposition;
* :mod:`repro.obs.context` — the per-request :class:`RequestContext`
  (``request_id`` minted at the frontends, echoed as ``X-Request-ID``,
  propagated through the command queue into journal records);
* :mod:`repro.obs.tracing` — span-level tracing over the same
  contextvar (``trace_id`` = ``request_id``): head-sampled per
  request, tail-sampled into a bounded ring (errors + slowest-N kept),
  served at ``GET /v1/traces`` and ``repro slow``;
* :mod:`repro.obs.slo` — per-tenant latency/error objectives with
  windowed attainment and error-budget burn-rate gauges;
* :mod:`repro.obs.logging` — opt-in structured access/event logging
  (:class:`AccessLogger`), human or JSON-lines.
"""

from repro.obs.context import (
    RequestContext,
    bind_request,
    clear_request,
    current_request,
    current_request_id,
    new_request_id,
    run_in_context,
)
from repro.obs.logging import NULL_ACCESS_LOG, AccessLogger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    PICK_LATENCY_BUCKETS,
    NULL_REGISTRY,
    OVERFLOW_LABEL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullInstrument,
)
from repro.obs.slo import (
    DEFAULT_OBJECTIVE,
    SLOEngine,
    SLOObjective,
    load_slo_config,
)
from repro.obs.tracing import (
    NULL_TRACER,
    TraceState,
    Tracer,
    add_span,
    span,
)

__all__ = [
    "AccessLogger",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_OBJECTIVE",
    "PICK_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_ACCESS_LOG",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullInstrument",
    "OVERFLOW_LABEL",
    "RequestContext",
    "SLOEngine",
    "SLOObjective",
    "TraceState",
    "Tracer",
    "add_span",
    "bind_request",
    "clear_request",
    "current_request",
    "current_request_id",
    "load_slo_config",
    "new_request_id",
    "run_in_context",
    "span",
]
