"""Per-tenant SLO tracking: windowed attainment and burn rate.

An :class:`SLOObjective` says what a tenant was promised — "99% of
requests answer within 250ms, errors count as misses".  The
:class:`SLOEngine` measures what they got: every completed gateway
request is scored good/bad against the tenant's objective, accumulated
into one-second buckets, and read back as **attainment** (good/total
over a window) and **error-budget burn rate** (the multi-window SRE
number: how many times faster than "exactly on target" the tenant is
consuming its budget — burn 1.0 means on target, 14+ over a short
window is the classic page-now threshold).

The engine is O(1) per request and allocation-free after the first
request per tenant: a circular array of ``max(window)+1`` one-second
buckets per tenant, stamp-validated so stale buckets self-clear as the
clock wraps.  Two windows by default (60s fast-burn, 600s slow-burn).
Gauges ``slo_attainment_ratio`` / ``slo_error_budget_burn`` (labels:
tenant, window) refresh on every export, so ``GET /metrics`` always
scrapes current values.

Objectives come from ``repro serve --slo-config slo.json``::

    {"default": {"latency_ms": 1000, "target": 0.99},
     "tenants": {"acme": {"latency_ms": 250, "target": 0.999}}}

or fall back to the engine default (1s @ 99%).  The clock is
injectable so window-boundary math is testable without sleeping.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

__all__ = [
    "DEFAULT_OBJECTIVE",
    "SLOEngine",
    "SLOObjective",
    "load_slo_config",
]


@dataclass(frozen=True)
class SLOObjective:
    """One tenant's promise: latency bound + attainment target."""

    #: Requests slower than this are budget misses.
    latency_ms: float = 1000.0
    #: Fraction of requests that must be good (0 < target < 1].
    target: float = 0.99

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise ValueError(
                f"latency_ms must be positive, got {self.latency_ms}"
            )
        if not 0.0 < self.target <= 1.0:
            raise ValueError(
                f"target must be in (0, 1], got {self.target}"
            )


DEFAULT_OBJECTIVE = SLOObjective()


class _TenantTrack:
    """Circular one-second good/total buckets for one tenant."""

    __slots__ = ("objective", "size", "stamp", "good", "total")

    def __init__(self, objective: SLOObjective, size: int) -> None:
        self.objective = objective
        self.size = size
        self.stamp = [-1] * size  # absolute second each slot holds
        self.good = [0] * size
        self.total = [0] * size

    def record(self, second: int, good: bool) -> None:
        index = second % self.size
        if self.stamp[index] != second:
            self.stamp[index] = second
            self.good[index] = 0
            self.total[index] = 0
        self.total[index] += 1
        if good:
            self.good[index] += 1

    def window_counts(self, second: int, window: int) -> Tuple[int, int]:
        """(good, total) over the ``window`` seconds ending at
        ``second`` inclusive — stamps in ``(second-window, second]``."""
        good = total = 0
        floor = second - window
        for index in range(self.size):
            stamp = self.stamp[index]
            if floor < stamp <= second:
                good += self.good[index]
                total += self.total[index]
        return good, total


class SLOEngine:
    """Scores requests against per-tenant objectives, exports gauges."""

    def __init__(
        self,
        *,
        registry: Optional[MetricsRegistry] = None,
        objectives: Optional[Dict[str, SLOObjective]] = None,
        default: Optional[SLOObjective] = None,
        windows: Tuple[int, ...] = (60, 600),
        clock: Callable[[], float] = time.monotonic,
        enabled: Optional[bool] = None,
    ) -> None:
        registry = registry if registry is not None else NULL_REGISTRY
        if not windows or any(w < 1 for w in windows):
            raise ValueError(f"windows must be positive, got {windows}")
        self.registry = registry
        self.objectives: Dict[str, SLOObjective] = dict(objectives or {})
        self.default = default or DEFAULT_OBJECTIVE
        self.windows = tuple(sorted(int(w) for w in windows))
        self.clock = clock
        self.enabled = (
            bool(enabled) if enabled is not None else registry.enabled
        )
        self._size = self.windows[-1] + 1
        self._tracks: Dict[str, _TenantTrack] = {}
        self._m_attainment = registry.gauge(
            "slo_attainment_ratio",
            "Fraction of requests meeting the tenant's SLO over the "
            "window.",
            labels=("tenant", "window"),
        )
        self._m_burn = registry.gauge(
            "slo_error_budget_burn",
            "Error-budget burn rate over the window (1.0 = exactly on "
            "target).",
            labels=("tenant", "window"),
        )
        #: Route-class tracks: ``(tenant, class)`` -> _TenantTrack.
        #: Additive — the tenant-wide gauges above keep scoring every
        #: request; a classed request *additionally* lands here so
        #: serving-path (infer) attainment is visible on its own.
        self._class_tracks: Dict[Tuple[str, str], _TenantTrack] = {}
        self._m_class_attainment = registry.gauge(
            "slo_class_attainment_ratio",
            "Fraction of requests meeting the tenant's SLO over the "
            "window, by route class.",
            labels=("tenant", "route_class", "window"),
        )
        self._m_class_burn = registry.gauge(
            "slo_class_error_budget_burn",
            "Error-budget burn rate over the window by route class "
            "(1.0 = exactly on target).",
            labels=("tenant", "route_class", "window"),
        )

    def objective_for(self, tenant: str) -> SLOObjective:
        return self.objectives.get(tenant, self.default)

    # -- the per-request hot path --------------------------------------
    def record(
        self,
        tenant: str,
        duration: float,
        *,
        error: bool = False,
        now: Optional[float] = None,
        route_class: Optional[str] = None,
    ) -> None:
        """Score one completed request (``duration`` in seconds).

        ``route_class`` (e.g. ``"infer"``) additionally scores the
        request into a per-class track so attainment for that route is
        visible on its own; the tenant-wide numbers always include it.
        """
        if not self.enabled:
            return
        track = self._tracks.get(tenant)
        if track is None:
            # First request for the tenant; registration is rare and
            # dict assignment is atomic under the GIL, so a racing
            # duplicate build just wastes one allocation.
            track = _TenantTrack(self.objective_for(tenant), self._size)
            self._tracks.setdefault(tenant, track)
            track = self._tracks[tenant]
        good = (not error) and (
            duration * 1000.0 <= track.objective.latency_ms
        )
        second = int(now if now is not None else self.clock())
        track.record(second, good)
        if route_class is not None:
            key = (tenant, route_class)
            class_track = self._class_tracks.get(key)
            if class_track is None:
                class_track = _TenantTrack(track.objective, self._size)
                self._class_tracks.setdefault(key, class_track)
                class_track = self._class_tracks[key]
            class_track.record(second, good)

    # -- reading -------------------------------------------------------
    def attainment(
        self, tenant: str, window: int, *, now: Optional[float] = None
    ) -> float:
        """good/total over the window; 1.0 with no traffic (an idle
        tenant is not out of SLO)."""
        track = self._tracks.get(tenant)
        if track is None:
            return 1.0
        second = int(now if now is not None else self.clock())
        good, total = track.window_counts(second, int(window))
        if total == 0:
            return 1.0
        return good / total

    def burn_rate(
        self, tenant: str, window: int, *, now: Optional[float] = None
    ) -> float:
        """(1 - attainment) / (1 - target): budget-consumption speed.

        1.0 means missing exactly as often as the objective allows; a
        target of 1.0 (zero budget) burns at ``inf`` on any miss.
        """
        attainment = self.attainment(tenant, window, now=now)
        objective = self.objective_for(tenant)
        budget = 1.0 - objective.target
        miss = 1.0 - attainment
        if budget <= 0.0:
            return math.inf if miss > 0.0 else 0.0
        return miss / budget

    def class_attainment(
        self,
        tenant: str,
        route_class: str,
        window: int,
        *,
        now: Optional[float] = None,
    ) -> float:
        """good/total for one route class; 1.0 with no traffic."""
        track = self._class_tracks.get((tenant, route_class))
        if track is None:
            return 1.0
        second = int(now if now is not None else self.clock())
        good, total = track.window_counts(second, int(window))
        if total == 0:
            return 1.0
        return good / total

    def class_burn_rate(
        self,
        tenant: str,
        route_class: str,
        window: int,
        *,
        now: Optional[float] = None,
    ) -> float:
        attainment = self.class_attainment(
            tenant, route_class, window, now=now
        )
        objective = self.objective_for(tenant)
        budget = 1.0 - objective.target
        miss = 1.0 - attainment
        if budget <= 0.0:
            return math.inf if miss > 0.0 else 0.0
        return miss / budget

    def export(self, *, now: Optional[float] = None) -> None:
        """Refresh the gauges (called just before a scrape renders)."""
        if not self.enabled:
            return
        for tenant in list(self._tracks):
            for window in self.windows:
                label = f"{window}s"
                self._m_attainment.labels(tenant, label).set(
                    self.attainment(tenant, window, now=now)
                )
                burn = self.burn_rate(tenant, window, now=now)
                if math.isinf(burn):
                    burn = float(10 ** 9)  # exposition-safe sentinel
                self._m_burn.labels(tenant, label).set(burn)
        for (tenant, route_class) in list(self._class_tracks):
            for window in self.windows:
                label = f"{window}s"
                self._m_class_attainment.labels(
                    tenant, route_class, label
                ).set(
                    self.class_attainment(
                        tenant, route_class, window, now=now
                    )
                )
                burn = self.class_burn_rate(
                    tenant, route_class, window, now=now
                )
                if math.isinf(burn):
                    burn = float(10 ** 9)
                self._m_class_burn.labels(
                    tenant, route_class, label
                ).set(burn)

    def status(self, *, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """JSON-safe per-tenant summary for ``repro slo status``."""
        out: List[Dict[str, Any]] = []
        for tenant in sorted(self._tracks):
            objective = self._tracks[tenant].objective
            row: Dict[str, Any] = {
                "tenant": tenant,
                "latency_ms": objective.latency_ms,
                "target": objective.target,
                "windows": {},
            }
            for window in self.windows:
                burn = self.burn_rate(tenant, window, now=now)
                row["windows"][f"{window}s"] = {
                    "attainment": round(
                        self.attainment(tenant, window, now=now), 6
                    ),
                    "burn": (
                        None if math.isinf(burn) else round(burn, 4)
                    ),
                }
            classes = sorted(
                route_class
                for (track_tenant, route_class) in self._class_tracks
                if track_tenant == tenant
            )
            if classes:
                row["classes"] = {}
                for route_class in classes:
                    row["classes"][route_class] = {}
                    for window in self.windows:
                        burn = self.class_burn_rate(
                            tenant, route_class, window, now=now
                        )
                        row["classes"][route_class][f"{window}s"] = {
                            "attainment": round(
                                self.class_attainment(
                                    tenant, route_class, window, now=now
                                ),
                                6,
                            ),
                            "burn": (
                                None
                                if math.isinf(burn)
                                else round(burn, 4)
                            ),
                        }
            out.append(row)
        return out


def load_slo_config(path: str) -> Tuple[SLOObjective, Dict[str, SLOObjective]]:
    """Parse an ``--slo-config`` JSON file.

    Returns ``(default_objective, per_tenant_objectives)``.  Raises
    ``ValueError`` with a pointed message on malformed input — serve
    startup should fail loudly, not silently un-SLO a tenant.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(
            f"--slo-config must be a JSON object, got "
            f"{type(document).__name__}"
        )
    unknown = set(document) - {"default", "tenants"}
    if unknown:
        raise ValueError(
            f"--slo-config has unknown top-level keys {sorted(unknown)}; "
            "expected 'default' and/or 'tenants'"
        )

    def _objective(raw: Any, where: str) -> SLOObjective:
        if not isinstance(raw, dict):
            raise ValueError(
                f"{where} must be an object with latency_ms/target"
            )
        extra = set(raw) - {"latency_ms", "target"}
        if extra:
            raise ValueError(
                f"{where} has unknown keys {sorted(extra)}"
            )
        try:
            return SLOObjective(
                latency_ms=float(raw.get("latency_ms", 1000.0)),
                target=float(raw.get("target", 0.99)),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{where}: {exc}") from exc

    default = DEFAULT_OBJECTIVE
    if "default" in document:
        default = _objective(document["default"], "--slo-config default")
    tenants: Dict[str, SLOObjective] = {}
    raw_tenants = document.get("tenants", {})
    if not isinstance(raw_tenants, dict):
        raise ValueError("--slo-config 'tenants' must be an object")
    for name, raw in raw_tenants.items():
        tenants[str(name)] = _objective(
            raw, f"--slo-config tenants[{name!r}]"
        )
    return default, tenants
