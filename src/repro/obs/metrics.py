"""A zero-dependency metrics substrate: counters, gauges, histograms.

:class:`MetricsRegistry` is the process-local home of every metric the
service emits.  Three instrument kinds cover the catalog:

* :class:`Counter` — a monotonically increasing float (requests,
  records, bytes);
* :class:`Gauge` — a value that goes both ways (queue depth, lag);
* :class:`Histogram` — fixed-bucket latency distribution from which
  p50/p95/p99 are derivable without storing samples.

Every family is **labelable** (``labels(tenant, endpoint, ...)``
returns the per-label-set child) and **thread-safe**: child lookups
take the family lock, child updates take a per-child lock, and reading
(:meth:`MetricsRegistry.render_prometheus`,
:meth:`MetricsRegistry.to_dict`) never blocks writers for longer than
one child copy — which is what lets the service serve ``GET /metrics``
on its lock-free read path.

Cardinality is bounded by construction: a family accepts at most
``max_label_sets`` distinct label combinations; past that, new
combinations collapse into one ``__overflow__`` child and the
registry-level ``obs_label_overflow_total`` counter records the drops,
so a hostile (or buggy) label source can never grow memory without
bound.

A registry built with ``enabled=False`` hands out no-op instruments —
the instrumentation call sites stay branch-free and the overhead drops
to one attribute lookup per event (the ``repro serve --no-metrics``
escape hatch, raced in ``benchmarks/bench_service_throughput.py``).
"""

from __future__ import annotations

import bisect
import math
import re
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.context import current_request

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "PICK_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullInstrument",
]

#: Latency bucket upper bounds (seconds) sized for this service: the
#: read path answers in tens of microseconds, fsyncs in milliseconds,
#: and long-polls park for up to 30s.  ``+Inf`` is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: The vectorized decision path picks in single-digit microseconds, so
#: the request-latency buckets above (first bound 100µs) would collapse
#: every pick into one bucket and make the percentiles meaningless.
PICK_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
) + DEFAULT_LATENCY_BUCKETS

#: Label value every over-cardinality label set collapses into.
OVERFLOW_LABEL = "__overflow__"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    """Prometheus exposition escaping for label values."""
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(float(value))


# ----------------------------------------------------------------------
# Children (one per label set)
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counters only go up; inc({amount}) is negative — "
                "use a Gauge for values that fall"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can rise and fall (depths, lags, temperatures)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution; percentiles derive from the counts.

    ``buckets`` are the inclusive upper bounds of each bucket, strictly
    increasing; an implicit ``+Inf`` bucket catches the tail.  Each
    observation lands in the first bucket whose bound is >= the value
    (``bisect_left``, so a value exactly on a bound belongs to that
    bound's bucket — the Prometheus ``le`` convention).
    """

    __slots__ = ("_lock", "bounds", "counts", "total", "sum", "_exemplars")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(
            b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])
        ):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got "
                f"{self.bounds}"
            )
        self._lock = threading.Lock()
        self.counts = [0] * (len(self.bounds) + 1)  # +1: the +Inf bucket
        self.total = 0
        self.sum = 0.0
        #: Latest (trace_id, value) per bucket index, recorded only for
        #: requests whose trace survived head sampling — so a bad
        #: bucket in the JSON view links to a concrete fetchable trace.
        self._exemplars: Dict[int, Tuple[str, float]] = {}

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        context = current_request()
        with self._lock:
            self.counts[index] += 1
            self.total += 1
            self.sum += value
            if context is not None and context.trace is not None:
                self._exemplars[index] = (context.request_id, value)

    @contextmanager
    def time(self) -> Iterator[None]:
        """``with histogram.time():`` — observe the block's duration."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (q in [0, 100]) from buckets.

        Linear interpolation inside the target bucket, the same
        estimate ``histogram_quantile`` computes server-side in
        Prometheus.  Observations in the ``+Inf`` bucket clamp to the
        largest finite bound (there is no upper edge to interpolate
        toward).  Returns ``nan`` when nothing was observed.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            counts = list(self.counts)
            total = self.total
        if total == 0:
            return math.nan
        rank = (q / 100.0) * total
        cumulative = 0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count > 0:
                if index >= len(self.bounds):
                    return self.bounds[-1]  # +Inf bucket: clamp
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                fraction = (rank - previous) / count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.bounds[-1]  # pragma: no cover - rank <= total always

    def snapshot(self) -> Dict[str, Any]:
        """A consistent copy for exposition (one short lock hold)."""
        with self._lock:
            return {
                "bounds": self.bounds,
                "counts": list(self.counts),
                "count": self.total,
                "sum": self.sum,
                "exemplars": dict(self._exemplars),
            }


class NullInstrument:
    """The no-op stand-in a disabled registry hands out.

    Accepts the whole Counter/Gauge/Histogram surface so call sites
    never branch on whether metrics are enabled.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @contextmanager
    def time(self) -> Iterator[None]:
        yield

    def percentile(self, q: float) -> float:
        return math.nan

    def labels(self, *values: Any) -> "NullInstrument":
        return self

    @property
    def value(self) -> float:
        return 0.0


_NULL_INSTRUMENT = NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


# ----------------------------------------------------------------------
# Families (one per metric name)
# ----------------------------------------------------------------------
class MetricFamily:
    """One named metric and all of its label-set children.

    A family declared with ``label_names=()`` is its own single child:
    ``family.inc()`` / ``family.observe()`` work directly.  Labelled
    families hand out children via :meth:`labels`.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,  # noqa: A002 - prometheus vocabulary
        label_names: Tuple[str, ...],
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        max_label_sets: int = 64,
        overflow_counter: Optional[Counter] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.buckets = tuple(buckets)
        self.max_label_sets = int(max_label_sets)
        self._overflow_counter = overflow_counter
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not label_names:
            self._children[()] = self._make_child()

    def _make_child(self) -> Any:
        if self.kind == "histogram":
            return Histogram(self.buckets)
        return _KINDS[self.kind]()

    def labels(self, *values: Any) -> Any:
        """The child for one label-value combination (created lazily).

        Past ``max_label_sets`` distinct combinations, every *new*
        combination collapses into the shared ``__overflow__`` child —
        existing children keep updating — and the registry's
        ``obs_label_overflow_total`` counter ticks once per collapsed
        call, so runaway cardinality is visible instead of fatal.
        """
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} declares labels {self.label_names}, got "
                f"{len(values)} value(s): {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is not None:
                return child
            if (
                len(self._children) >= self.max_label_sets
                and OVERFLOW_LABEL not in key
            ):
                if self._overflow_counter is not None:
                    self._overflow_counter.inc()
                # Resolve the overflow child inline: the family lock
                # is not reentrant, so recursing into labels() here
                # would deadlock.
                key = tuple(OVERFLOW_LABEL for _ in self.label_names)
                child = self._children.get(key)
                if child is not None:
                    return child
            child = self._make_child()
            self._children[key] = child
            return child

    # -- unlabelled families act as their own child --------------------
    def _solo(self) -> Any:
        if self.label_names:
            raise ValueError(
                f"{self.name} declares labels {self.label_names}; "
                "address a child via .labels(...)"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def time(self):
        return self._solo().time()

    def percentile(self, q: float) -> float:
        return self._solo().percentile(q)

    @property
    def value(self) -> float:
        return self._solo().value

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """A stable-ordered snapshot of (label values, child)."""
        with self._lock:
            return sorted(self._children.items())


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """Process-local metric store with Prometheus and JSON exposition.

    Families register once by name; a second registration with the
    same (kind, labels) returns the existing family, and a conflicting
    one raises — two subsystems can therefore share a family (the
    journal and the offline ``repro state inspect`` both build
    ``journal_records_total``) without coordinating imports.
    """

    def __init__(
        self, *, enabled: bool = True, max_label_sets: int = 64
    ) -> None:
        self.enabled = bool(enabled)
        self.max_label_sets = int(max_label_sets)
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}
        #: Ticks once per labels() call that collapsed into the
        #: overflow child (see MetricFamily.labels).
        self.overflow = Counter()
        if self.enabled:
            self._families["obs_label_overflow_total"] = MetricFamily(
                "obs_label_overflow_total",
                "counter",
                "Label sets collapsed by the cardinality guard.",
                (),
            )
            self._families["obs_label_overflow_total"]._children[()] = (
                self.overflow
            )

    # -- registration --------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help: str,  # noqa: A002 - prometheus vocabulary
        labels: Sequence[str],
        **kwargs: Any,
    ) -> Any:
        if not self.enabled:
            return _NULL_INSTRUMENT
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        label_names = tuple(str(label) for label in labels)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{family.kind} with labels {family.label_names}; "
                        f"cannot re-register as a {kind} with labels "
                        f"{label_names}"
                    )
                return family
            family = MetricFamily(
                name,
                kind,
                help,
                label_names,
                max_label_sets=self.max_label_sets,
                overflow_counter=self.overflow,
                **kwargs,
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Any:
        """Register (or fetch) a counter family."""
        return self._register(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Any:
        """Register (or fetch) a gauge family."""
        return self._register(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Any:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._register(
            name, "histogram", help, labels, buckets=buckets
        )

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    # -- exposition ----------------------------------------------------
    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.children():
                pairs = ",".join(
                    f'{label}="{_escape_label_value(value)}"'
                    for label, value in zip(family.label_names, values)
                )
                if family.kind == "histogram":
                    snap = child.snapshot()
                    cumulative = 0
                    bounds = list(snap["bounds"]) + [math.inf]
                    for bound, count in zip(bounds, snap["counts"]):
                        cumulative += count
                        le = _format_value(bound)
                        bucket_pairs = (
                            f'{pairs},le="{le}"' if pairs else f'le="{le}"'
                        )
                        lines.append(
                            f"{family.name}_bucket{{{bucket_pairs}}} "
                            f"{cumulative}"
                        )
                    suffix = f"{{{pairs}}}" if pairs else ""
                    lines.append(
                        f"{family.name}_sum{suffix} "
                        f"{_format_value(snap['sum'])}"
                    )
                    lines.append(
                        f"{family.name}_count{suffix} {snap['count']}"
                    )
                else:
                    suffix = f"{{{pairs}}}" if pairs else ""
                    lines.append(
                        f"{family.name}{suffix} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot (the ``GET /v1/metrics`` body).

        Histogram series carry derived p50/p95/p99 alongside the raw
        bucket counts, so a caller needs no quantile math of its own.
        """
        out: Dict[str, Any] = {}
        for family in self.families():
            series = []
            for values, child in family.children():
                labels = dict(zip(family.label_names, values))
                if family.kind == "histogram":
                    snap = child.snapshot()
                    exemplars = snap.get("exemplars", {})
                    buckets = []
                    for index, (b, c) in enumerate(
                        zip(
                            list(snap["bounds"]) + ["+Inf"],
                            snap["counts"],
                        )
                    ):
                        bucket: Dict[str, Any] = {"le": b, "count": c}
                        exemplar = exemplars.get(index)
                        if exemplar is not None:
                            bucket["exemplar"] = {
                                "trace_id": exemplar[0],
                                "value": exemplar[1],
                            }
                        buckets.append(bucket)
                    entry: Dict[str, Any] = {
                        "labels": labels,
                        "count": snap["count"],
                        "sum": snap["sum"],
                        "buckets": buckets,
                    }
                    for q in (50, 95, 99):
                        p = child.percentile(q)
                        entry[f"p{q}"] = None if math.isnan(p) else p
                else:
                    entry = {"labels": labels, "value": child.value}
                series.append(entry)
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": series,
            }
        return out


#: The shared disabled registry: every instrument is a no-op.  Used as
#: the default for subsystems (scheduler, journal) that only emit when
#: a live registry is bound to them.
NULL_REGISTRY = MetricsRegistry(enabled=False)
