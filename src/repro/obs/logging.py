"""Structured access/event logging for the service frontends.

:class:`AccessLogger` replaces the hard-silenced
``BaseHTTPRequestHandler.log_message``: off by default (a benchmark
harness hammering the server should not pay for I/O per request),
enabled with ``repro serve --access-log`` (human-readable lines) or
``repro serve --log-json`` (one JSON object per line, machine-
ingestible, which also unlocks lifecycle *events* — serve start/stop,
recovery, snapshot).

One access line per request::

    2026-08-08T12:00:00Z 127.0.0.1 "POST /v1/apps" 200 1.2ms req-ab12…

or as JSON::

    {"ts": ..., "kind": "access", "method": "POST", "path": "/v1/apps",
     "status": 200, "duration_ms": 1.2, "request_id": "req-ab12…", ...}

Writes take a lock around a single ``write`` + ``flush`` so concurrent
handler threads never interleave partial lines.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from datetime import datetime, timezone
from typing import Any, IO, Optional

__all__ = ["AccessLogger", "NULL_ACCESS_LOG"]


def _utc_stamp(ts: float) -> str:
    return (
        datetime.fromtimestamp(ts, tz=timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%S.%f")[:-3]
        + "Z"
    )


class AccessLogger:
    """Line-oriented access/event log with human and JSON formats.

    Parameters
    ----------
    stream:
        Target file object (default: ``sys.stderr``, so access lines
        never mix with command output on stdout).
    json_lines:
        Emit one JSON object per line instead of human-readable text.
    enabled:
        A disabled logger's methods are no-ops after one cheap check —
        the default state, so instrumented frontends cost nothing
        unless the operator opts in.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        *,
        json_lines: bool = False,
        enabled: bool = True,
    ) -> None:
        self.enabled = bool(enabled)
        self.json_lines = bool(json_lines)
        self._stream = stream
        self._lock = threading.Lock()

    @property
    def stream(self) -> IO[str]:
        return self._stream if self._stream is not None else sys.stderr

    def _emit(self, line: str) -> None:
        with self._lock:
            try:
                self.stream.write(line + "\n")
                self.stream.flush()
            except (ValueError, OSError):  # closed stream on shutdown
                pass

    # ------------------------------------------------------------------
    def access(
        self,
        *,
        method: str,
        path: str,
        status: int,
        duration: float,
        request_id: Optional[str] = None,
        client: str = "",
        frontend: str = "",
        tenant: Optional[str] = None,
        route: Optional[str] = None,
    ) -> None:
        """One completed HTTP exchange.

        ``route`` is the route *template* (``/v1/apps/{app}``), not the
        concrete path — the same key traces and per-route histograms
        use, so one grep joins all three.
        """
        if not self.enabled:
            return
        now = time.time()
        if self.json_lines:
            record: dict[str, Any] = {
                "ts": round(now, 6),
                "kind": "access",
                "frontend": frontend,
                "client": client,
                "method": method,
                "path": path,
                "status": int(status),
                "duration_ms": round(duration * 1000.0, 3),
            }
            if route:
                record["route"] = route
            if request_id:
                record["request_id"] = request_id
            if tenant:
                record["tenant"] = tenant
            self._emit(json.dumps(record, separators=(",", ":")))
        else:
            rid = f" {request_id}" if request_id else ""
            extra = ""
            if route:
                extra += f" route={route}"
            if tenant:
                extra += f" tenant={tenant}"
            self._emit(
                f"{_utc_stamp(now)} {client or '-'} "
                f'"{method} {path}" {int(status)} '
                f"{duration * 1000.0:.1f}ms{rid}{extra}"
            )

    def event(self, kind: str, **fields: Any) -> None:
        """A lifecycle event (serve_start, recovery, snapshot, ...)."""
        if not self.enabled:
            return
        now = time.time()
        if self.json_lines:
            record = {"ts": round(now, 6), "kind": kind}
            record.update(fields)
            self._emit(json.dumps(record, separators=(",", ":")))
        else:
            detail = " ".join(f"{k}={v}" for k, v in fields.items())
            self._emit(f"{_utc_stamp(now)} [{kind}] {detail}".rstrip())


#: Shared disabled logger — the default for both frontends.
NULL_ACCESS_LOG = AccessLogger(enabled=False)
