"""Request tracing context: one ``request_id`` from socket to WAL.

Both HTTP frontends mint (or accept) a request id per request, bind a
:class:`RequestContext` for the duration of handling, and echo the id
back as ``X-Request-ID``.  Everything downstream — gateway handlers,
the per-tenant command-queue drainers, journal appends, error bodies,
access-log lines — reads the ambient context instead of threading the
id through every signature.

The carrier is a :mod:`contextvars` variable, which follows the
request across ``await`` points on the asyncio frontend and stays
thread-local on the threading frontend.  Two hops do NOT propagate it
automatically and must capture it explicitly:

* ``loop.run_in_executor`` starts the callable in an *empty* context —
  wrap it with ``contextvars.copy_context().run(...)`` at submit time;
* the gateway's command-queue drainer threads run long after the
  submitting request returned — the queue entry stores
  ``current_context()`` at enqueue and the drainer re-enters it via
  :func:`run_in_context` around ``handle()``.
"""

from __future__ import annotations

import contextvars
import secrets
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TypeVar

__all__ = [
    "RequestContext",
    "bind_request",
    "clear_request",
    "current_request",
    "current_request_id",
    "new_request_id",
    "run_in_context",
]

T = TypeVar("T")

#: Header both frontends read (client-supplied id) and always write.
REQUEST_ID_HEADER = "X-Request-ID"

#: Request ids the server will accept from clients must stay modest:
#: they land in log lines and journal records verbatim.
_MAX_CLIENT_ID_LEN = 128


def new_request_id() -> str:
    """A fresh server-minted request id (``req-`` + 16 hex chars)."""
    return f"req-{secrets.token_hex(8)}"


def sanitize_client_id(raw: Optional[str]) -> Optional[str]:
    """A client-supplied ``X-Request-ID``, or None if unusable.

    Printable ASCII only, bounded length — the id is echoed into logs,
    error bodies, and durable journal records.
    """
    if not raw:
        return None
    raw = raw.strip()
    if not raw or len(raw) > _MAX_CLIENT_ID_LEN:
        return None
    if any(c in "\r\n\t" or not c.isprintable() for c in raw):
        return None
    return raw


@dataclass
class RequestContext:
    """Everything tracing carries alongside one in-flight request."""

    request_id: str = field(default_factory=new_request_id)
    #: Monotonic start, for duration math in access logs.
    started: float = field(default_factory=time.perf_counter)
    #: Which frontend accepted the request ("threading" | "asyncio"
    #: | "cli" | ...), for log lines.
    frontend: str = ""
    #: The span accumulator (:class:`repro.obs.tracing.TraceState`)
    #: when head sampling kept this request; None when dropped —
    #: every ``span()`` call site then costs one attribute read.
    trace: Optional[Any] = None
    #: Authenticated tenant name, filled in by the gateway once the
    #: token resolves; access logs and traces read it on the way out.
    tenant: str = ""

    def elapsed(self) -> float:
        return time.perf_counter() - self.started


_current: contextvars.ContextVar[Optional[RequestContext]] = (
    contextvars.ContextVar("repro_request_context", default=None)
)


def bind_request(
    context: Optional[RequestContext] = None,
    *,
    request_id: Optional[str] = None,
    frontend: str = "",
) -> RequestContext:
    """Install ``context`` (or a fresh one) as the ambient request.

    Returns the bound context.  Callers that need strict scoping keep
    the returned token discipline out of the hot path by calling
    :func:`clear_request` in a ``finally``.
    """
    if context is None:
        context = RequestContext(
            request_id=request_id or new_request_id(), frontend=frontend
        )
    _current.set(context)
    return context


def clear_request() -> None:
    """Drop the ambient request context."""
    _current.set(None)


def current_request() -> Optional[RequestContext]:
    """The ambient :class:`RequestContext`, or None outside a request."""
    return _current.get()


def current_request_id() -> Optional[str]:
    """Shorthand for the ambient request id (None outside a request)."""
    context = _current.get()
    return context.request_id if context is not None else None


def run_in_context(
    snapshot: Optional[contextvars.Context],
    func: Callable[..., T],
    *args: Any,
    **kwargs: Any,
) -> T:
    """Run ``func`` inside a captured context snapshot.

    ``snapshot`` is what ``contextvars.copy_context()`` returned at
    capture time (e.g. when a command was enqueued); ``None`` runs the
    callable directly.  ``Context.run`` refuses re-entry, so a snapshot
    already running on this thread falls back to a direct call — the
    ambient context is then already the right one.  The fallback fires
    only when ``func`` never started: a RuntimeError raised by ``func``
    itself must propagate, not trigger a second invocation.
    """
    if snapshot is None:
        return func(*args, **kwargs)
    started = False

    def _invoke() -> T:
        nonlocal started
        started = True
        return func(*args, **kwargs)

    try:
        return snapshot.run(_invoke)
    except RuntimeError:
        if started:
            raise
        return func(*args, **kwargs)
