"""Span-level request tracing: where one request spent its time.

PR 6 propagated a ``request_id`` socket → gateway → WAL; this module
grows that id into a **trace**.  A trace is the set of timed spans one
request produced on its way through the service — frontend decode,
command-queue wait, the gateway handler, scheduler picks, journal
append/fsync/commit, long-poll parking — plus, when read replicas tail
the WAL, a replica-side apply span joined to the writer's trace by the
``request_id`` stamped into the journal record.

Design constraints, in order:

* **Zero overhead when dropped.**  Head sampling decides per request
  whether a trace exists at all; when it does not, every ``span(...)``
  call site gets back one shared :data:`_NULL_SPAN` singleton — no
  allocation, no clock read, no lock.
* **Zero wiring in deep layers.**  ``span()`` / ``add_span()`` read the
  ambient :class:`~repro.obs.context.RequestContext` (the same
  contextvar the request id rides), so the journal and scheduler emit
  spans without holding a tracer reference; recovery replay and
  follower apply have no ambient context and therefore no-op.
* **Tail sampling on completion.**  Completed traces land in a bounded
  ring buffer that always retains error traces and the slowest N per
  route, and keeps a probabilistic sample of the rest — the traces an
  operator actually wants are the ones that survive.

Clocks: span times are ``time.perf_counter()`` (monotonic, comparable
across threads within one process) expressed relative to the trace
start, so a waterfall renders directly.  ``trace_id`` **is** the
request id — grep an access-log line, fetch the trace.
"""

from __future__ import annotations

import contextvars
import heapq
import random
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs.context import RequestContext, current_request

__all__ = [
    "NULL_TRACER",
    "TraceState",
    "Tracer",
    "add_span",
    "span",
]

#: Routes the operator plane itself serves — tracing a metrics scrape
#: with the tracer would make every snapshot self-polluting.
_OPERATOR_ROUTES = frozenset(
    {"/metrics", "/v1/metrics", "/v1/traces"}
)

#: Ambient parent span id for nesting.  0 is the implicit root span
#: (the request itself), so a top-level ``span()`` parents correctly
#: without any setup.
_active_span: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro_active_span", default=0
)


class TraceState:
    """The in-flight span accumulator one sampled request carries.

    Lives on ``RequestContext.trace`` and crosses threads with it (the
    command-queue snapshot carries the same object), so appends take a
    lock.  Span ids are small ints; 0 is the root.
    """

    __slots__ = (
        "trace_id", "started", "wall_start", "spans", "error", "_lock",
        "_next_sid",
    )

    def __init__(
        self, trace_id: str, *, started: Optional[float] = None
    ) -> None:
        self.trace_id = trace_id
        self.started = (
            started if started is not None else time.perf_counter()
        )
        self.wall_start = time.time()
        self.spans: List[Dict[str, Any]] = []
        self.error = False
        self._lock = threading.Lock()
        self._next_sid = 1  # 0 is the implicit root

    def add(
        self,
        name: str,
        start: float,
        end: float,
        parent: int,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Record one completed span; returns its id."""
        entry: Dict[str, Any] = {
            "name": name,
            "parent": parent,
            "start_ms": round((start - self.started) * 1000.0, 4),
            "duration_ms": round((end - start) * 1000.0, 4),
        }
        if attrs:
            entry["attrs"] = attrs
        with self._lock:
            sid = self._next_sid
            self._next_sid += 1
            entry["sid"] = sid
            self.spans.append(entry)
        return sid


class _NullSpan:
    """The span every call site gets when the trace was dropped.

    One shared instance, ``__slots__ = ()`` — entering it allocates
    nothing and reads no clock, which is what keeps the sampled-out
    fast path free (asserted by ``tests/obs/test_tracing.py``).
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """A live span: context manager recording duration and parent."""

    __slots__ = (
        "_trace", "_name", "_attrs", "_start", "_parent", "_token",
        "_sid",
    )

    def __init__(
        self, trace: TraceState, name: str, attrs: Dict[str, Any]
    ) -> None:
        self._trace = trace
        self._name = name
        self._attrs = attrs
        self._start = 0.0
        self._parent = 0
        self._sid = 0
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "_SpanHandle":
        self._parent = _active_span.get()
        # Reserve the sid up front so children can parent to it; the
        # span record itself is appended on exit with the final times.
        with self._trace._lock:
            sid = self._trace._next_sid
            self._trace._next_sid += 1
        self._sid = sid
        self._token = _active_span.set(sid)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        end = time.perf_counter()
        if self._token is not None:
            _active_span.reset(self._token)
        if exc_type is not None:
            self._trace.error = True
            self._attrs = dict(self._attrs)
            self._attrs["error"] = exc_type.__name__
        entry: Dict[str, Any] = {
            "sid": self._sid,
            "name": self._name,
            "parent": self._parent,
            "start_ms": round(
                (self._start - self._trace.started) * 1000.0, 4
            ),
            "duration_ms": round((end - self._start) * 1000.0, 4),
        }
        if self._attrs:
            entry["attrs"] = self._attrs
        with self._trace._lock:
            self._trace.spans.append(entry)
        return False


def span(name: str, **attrs: Any):
    """A context manager timing ``name`` inside the ambient trace.

    Outside a request, or when sampling dropped the trace, returns the
    shared :data:`_NULL_SPAN` — zero allocation on the fast path.
    """
    context = current_request()
    trace = context.trace if context is not None else None
    if trace is None:
        return _NULL_SPAN
    return _SpanHandle(trace, name, attrs)


def add_span(name: str, start: float, end: float, **attrs: Any) -> None:
    """Record an already-measured ``perf_counter`` interval as a span.

    For call sites that timed the interval anyway (queue wait,
    scheduler pick, fsync) — no context-manager nesting needed.  No-op
    outside a sampled request.
    """
    context = current_request()
    trace = context.trace if context is not None else None
    if trace is None:
        return
    trace.add(name, start, end, _active_span.get(), attrs or None)


class Tracer:
    """Head-samples requests, tail-samples completed traces.

    ``start`` decides (once, cheaply) whether a request carries a
    :class:`TraceState` at all; ``finish`` decides whether the
    completed trace is worth keeping: error traces always, the slowest
    ``slow_per_route`` per route always, the rest with probability
    ``retain_rate``.  Kept traces live in a bounded ring; eviction
    prefers probabilistic keeps over slow ones over errors, so the
    interesting traces outlive the merely sampled.
    """

    enabled = True

    def __init__(
        self,
        *,
        capacity: int = 512,
        sample_rate: float = 1.0,
        retain_rate: float = 0.1,
        slow_per_route: int = 5,
        seed: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = int(capacity)
        self.sample_rate = float(sample_rate)
        self.retain_rate = float(retain_rate)
        self.slow_per_route = int(slow_per_route)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._ring: List[Dict[str, Any]] = []
        # Per-route min-heaps of the slowest durations currently
        # protected; a finishing trace is "slow" when it beats the
        # heap's floor (or the heap is not yet full).
        self._slow: Dict[str, List[float]] = {}
        self.started_total = 0
        self.dropped_total = 0
        self.kept_total = 0

    # -- lifecycle -----------------------------------------------------
    def start(self, context: RequestContext) -> None:
        """Maybe attach a TraceState to a freshly-bound request."""
        self.started_total += 1
        if self.sample_rate < 1.0 and (
            self.sample_rate <= 0.0
            or self._rng.random() >= self.sample_rate
        ):
            self.dropped_total += 1
            return
        context.trace = TraceState(
            context.request_id, started=context.started
        )

    def finish(
        self,
        context: RequestContext,
        *,
        route: str = "",
        status: int = 0,
        tenant: str = "",
        frontend: str = "",
    ) -> None:
        """Tail-sample a completed request's trace into the ring."""
        trace = context.trace
        if trace is None:
            return
        context.trace = None
        if route in _OPERATOR_ROUTES:
            return
        end = time.perf_counter()
        duration_ms = round((end - trace.started) * 1000.0, 4)
        error = trace.error or int(status) >= 500
        if error:
            kept = "error"
        elif self._is_slow(route, duration_ms):
            kept = "slow"
        elif self._rng.random() < self.retain_rate:
            kept = "sampled"
        else:
            return
        with trace._lock:
            spans = list(trace.spans)
        spans.insert(0, {
            "sid": 0,
            "name": "request",
            "parent": None,
            "start_ms": 0.0,
            "duration_ms": duration_ms,
        })
        entry = {
            "trace_id": trace.trace_id,
            "route": route,
            "tenant": tenant,
            "frontend": frontend,
            "status": int(status),
            "error": error,
            "duration_ms": duration_ms,
            "start_ts": round(trace.wall_start, 6),
            "kept": kept,
            "spans": spans,
        }
        self._insert(entry)

    def record_remote(
        self,
        trace_id: str,
        name: str,
        duration: float,
        **attrs: Any,
    ) -> None:
        """A span measured in *this* process for a trace born in
        another (replica apply joining the writer's trace by the
        ``request_id`` read out of the WAL record).

        Monotonic clocks do not compare across processes, so the
        remote entry stands alone — same ``trace_id``, own timeline.
        """
        duration_ms = round(duration * 1000.0, 4)
        span_entry: Dict[str, Any] = {
            "sid": 0,
            "name": name,
            "parent": None,
            "start_ms": 0.0,
            "duration_ms": duration_ms,
        }
        if attrs:
            span_entry["attrs"] = attrs
        entry = {
            "trace_id": trace_id,
            "route": "",
            "tenant": str(attrs.get("tenant", "")),
            "frontend": "replica",
            "status": 0,
            "error": False,
            "duration_ms": duration_ms,
            "start_ts": round(time.time(), 6),
            "kept": "remote",
            "spans": [span_entry],
        }
        self._insert(entry)

    # -- retention machinery -------------------------------------------
    def _is_slow(self, route: str, duration_ms: float) -> bool:
        with self._lock:
            heap = self._slow.setdefault(route, [])
            if len(heap) < self.slow_per_route:
                heapq.heappush(heap, duration_ms)
                return True
            if duration_ms > heap[0]:
                heapq.heapreplace(heap, duration_ms)
                return True
        return False

    def _insert(self, entry: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._ring) >= self.capacity:
                self._evict_locked()
            self._ring.append(entry)
            self.kept_total += 1

    def _evict_locked(self) -> None:
        """Drop one entry, preferring the least interesting oldest.

        Probabilistic/remote keeps go first, then slow-per-route, then
        (only when the whole ring is errors) the oldest error — the
        "eviction keeps error traces" guarantee.
        """
        for tier in (("sampled", "remote"), ("slow",), ("error",)):
            for index, held in enumerate(self._ring):
                if held["kept"] in tier:
                    del self._ring[index]
                    return
        del self._ring[0]  # pragma: no cover - every entry has a tier

    # -- reading -------------------------------------------------------
    def snapshot(
        self,
        *,
        tenant: Optional[str] = None,
        route: Optional[str] = None,
        min_ms: float = 0.0,
        limit: int = 50,
    ) -> List[Dict[str, Any]]:
        """Kept traces, slowest first, filtered."""
        with self._lock:
            entries = list(self._ring)
        if tenant is not None:
            entries = [e for e in entries if e["tenant"] == tenant]
        if route is not None:
            entries = [e for e in entries if e["route"] == route]
        if min_ms > 0.0:
            entries = [e for e in entries if e["duration_ms"] >= min_ms]
        entries.sort(key=lambda e: e["duration_ms"], reverse=True)
        return entries[: max(int(limit), 0)]

    def get(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every kept entry for one trace id (writer + remote joins)."""
        with self._lock:
            return [
                e for e in self._ring if e["trace_id"] == trace_id
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


class NullTracer:
    """The disabled tracer: the whole surface, none of the work."""

    enabled = False
    capacity = 0
    sample_rate = 0.0
    started_total = 0
    dropped_total = 0
    kept_total = 0

    __slots__ = ()

    def start(self, context: RequestContext) -> None:
        pass

    def finish(self, context: RequestContext, **kwargs: Any) -> None:
        context.trace = None

    def record_remote(
        self, trace_id: str, name: str, duration: float, **attrs: Any
    ) -> None:
        pass

    def snapshot(self, **kwargs: Any) -> List[Dict[str, Any]]:
        return []

    def get(self, trace_id: str) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0


#: Shared disabled tracer — the ``--no-metrics`` serving default.
NULL_TRACER = NullTracer()
